"""Interconnect topology abstraction.

The hierarchical partition produces, per hierarchy level, a set of *pair
boundaries*: at level ``h`` the array is divided into ``2**h`` sub-arrays,
and each sub-array is split into two halves that exchange the tensors
dictated by the communication model.  A topology's job is to say

* how much bandwidth one such pair boundary can use
  (:meth:`Topology.effective_pair_bandwidth`), and
* how many physical link hops an average word of that traffic traverses
  (:meth:`Topology.average_hops`), which feeds the energy model.

Concrete topologies (:class:`~repro.interconnect.htree.HTreeTopology` and
:class:`~repro.interconnect.torus.TorusTopology`) build a networkx graph of
accelerators, switches and links and derive these quantities from it.
"""

from __future__ import annotations

import abc
from typing import Sequence

import networkx as nx


def hierarchical_groups(num_accelerators: int, level: int) -> list[tuple[list[int], list[int]]]:
    """The pair boundaries of hierarchy ``level`` for an array of ``num_accelerators``.

    The array is indexed 0..N-1 and recursively halved by index ranges (the
    binary-tree pattern of Figure 3): at level 0 the single pair is
    ``([0..N/2-1], [N/2..N-1])``; at level 1 there are two pairs, one inside
    each half; and so on.

    Returns a list of ``(left_group, right_group)`` tuples, one per pair
    boundary at that level.
    """
    if num_accelerators <= 1 or num_accelerators & (num_accelerators - 1):
        raise ValueError(
            f"num_accelerators must be a power of two >= 2, got {num_accelerators}"
        )
    num_groups = 1 << level
    group_size = num_accelerators // num_groups
    if group_size < 2:
        raise ValueError(
            f"level {level} is too deep for {num_accelerators} accelerators"
        )
    pairs = []
    for group in range(num_groups):
        start = group * group_size
        half = group_size // 2
        left = list(range(start, start + half))
        right = list(range(start + half, start + group_size))
        pairs.append((left, right))
    return pairs


class Topology(abc.ABC):
    """Base class for accelerator-array interconnect topologies.

    Parameters
    ----------
    num_accelerators:
        Number of accelerators (a power of two).
    link_bandwidth_bytes:
        Bandwidth of one physical link in bytes per second.
    """

    #: Human-readable topology name used in reports.
    name: str = "abstract"

    def __init__(self, num_accelerators: int, link_bandwidth_bytes: float) -> None:
        if num_accelerators <= 1 or num_accelerators & (num_accelerators - 1):
            raise ValueError(
                f"num_accelerators must be a power of two >= 2, got {num_accelerators}"
            )
        if link_bandwidth_bytes <= 0:
            raise ValueError("link_bandwidth_bytes must be positive")
        self.num_accelerators = num_accelerators
        self.link_bandwidth_bytes = link_bandwidth_bytes
        self._graph: nx.Graph | None = None
        # The graph is immutable once built, and the simulator asks for the
        # same per-level quantities for every communication task of every
        # simulated step -- recomputing all-pairs shortest paths there
        # dominated whole parallelism-space sweeps before these caches.
        self._lengths: dict | None = None
        self._hops_cache: dict[int, float] = {}
        self._bandwidth_cache: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Structure.
    # ------------------------------------------------------------------

    @property
    def num_levels(self) -> int:
        """Number of hierarchy levels supported by this array size."""
        return self.num_accelerators.bit_length() - 1

    @property
    def graph(self) -> nx.Graph:
        """The networkx graph of accelerators (and switches) and links.

        Accelerator nodes are the integers ``0..N-1``; topology-specific
        switch nodes may be added with other labels.  Edge attribute
        ``bandwidth`` holds the link bandwidth in bytes per second.
        """
        if self._graph is None:
            self._graph = self._build_graph()
        return self._graph

    @abc.abstractmethod
    def _build_graph(self) -> nx.Graph:
        """Construct the physical graph."""

    # ------------------------------------------------------------------
    # Quantities consumed by the simulator.
    # ------------------------------------------------------------------

    def effective_pair_bandwidth(self, level: int) -> float:
        """Bandwidth (bytes/s) usable by one pair boundary at ``level``.

        Memoized per level: the value only depends on the (immutable) graph.
        """
        self._check_level(level)
        if level not in self._bandwidth_cache:
            self._bandwidth_cache[level] = self._compute_effective_pair_bandwidth(level)
        return self._bandwidth_cache[level]

    def average_hops(self, level: int) -> float:
        """Average physical link hops for one word exchanged at ``level``.

        Memoized per level: the value only depends on the (immutable) graph.
        """
        self._check_level(level)
        if level not in self._hops_cache:
            self._hops_cache[level] = self._compute_average_hops(level)
        return self._hops_cache[level]

    @abc.abstractmethod
    def _compute_effective_pair_bandwidth(self, level: int) -> float:
        """Uncached per-boundary bandwidth (bytes/s) at ``level``."""

    @abc.abstractmethod
    def _compute_average_hops(self, level: int) -> float:
        """Uncached average hop count for one word exchanged at ``level``."""

    # ------------------------------------------------------------------
    # Shared helpers for graph-derived metrics.
    # ------------------------------------------------------------------

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.num_levels:
            raise ValueError(
                f"level {level} out of range for {self.num_accelerators} accelerators"
            )

    def _shortest_path_lengths(self) -> dict:
        """All-pairs shortest-path lengths of the graph, computed once."""
        if self._lengths is None:
            self._lengths = dict(nx.all_pairs_shortest_path_length(self.graph))
        return self._lengths

    def _cut_bandwidth(self, left: Sequence[int], right: Sequence[int]) -> float:
        """Aggregate bandwidth of the graph edges crossing a node bipartition.

        Switch nodes (non-accelerator nodes) are assigned to the side whose
        accelerators they are closer to; edges between two switch nodes on
        different sides also count.
        """
        graph = self.graph
        side: dict = {}
        left_set, right_set = set(left), set(right)
        for node in graph.nodes:
            if node in left_set:
                side[node] = "left"
            elif node in right_set:
                side[node] = "right"
        # Assign remaining (switch) nodes by shortest-path distance to the
        # two accelerator groups.
        lengths = self._shortest_path_lengths()
        for node in graph.nodes:
            if node in side:
                continue
            to_left = min(lengths[node][acc] for acc in left_set)
            to_right = min(lengths[node][acc] for acc in right_set)
            side[node] = "left" if to_left <= to_right else "right"
        capacity = 0.0
        for u, v, data in graph.edges(data=True):
            if side[u] != side[v]:
                capacity += data.get("bandwidth", self.link_bandwidth_bytes)
        return capacity

    def _direct_cut_bandwidth(self, left: Sequence[int], right: Sequence[int]) -> float:
        """Aggregate bandwidth of links whose endpoints lie in the two groups.

        Unlike :meth:`_cut_bandwidth` this ignores every link touching a node
        outside the two groups, so it measures the capacity *directly*
        joining the groups rather than the capacity of a whole-array
        bisection.  This is the quantity that bounds a pair exchange when
        the rest of the array is busy with its own (same-level) exchanges.
        """
        left_set, right_set = set(left), set(right)
        capacity = 0.0
        for u, v, data in self.graph.edges(data=True):
            if (u in left_set and v in right_set) or (u in right_set and v in left_set):
                capacity += data.get("bandwidth", self.link_bandwidth_bytes)
        return capacity

    def _mean_pair_distance(self, left: Sequence[int], right: Sequence[int]) -> float:
        """Mean shortest-path hop count between accelerators of the two groups."""
        total = 0.0
        count = 0
        lengths = self._shortest_path_lengths()
        for a in left:
            for b in right:
                total += lengths[a][b]
                count += 1
        return total / count if count else 0.0

    def describe(self) -> str:
        """One-line description used in reports."""
        return (
            f"{self.name}: {self.num_accelerators} accelerators, "
            f"{self.link_bandwidth_bytes * 8 / 1e6:.0f} Mb/s links"
        )
