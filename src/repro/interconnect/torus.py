"""2-D torus interconnect.

Figure 4(d) of the paper connects the sixteen accelerators with a 4x4
torus.  Every physical link has the same bandwidth, and the hierarchical
traffic pattern produced by the partition must be mapped onto the mesh:
words exchanged between two groups traverse multiple hops and compete for
intermediate links, so the torus delivers less effective bandwidth to a
pair boundary than the H tree even when the raw cut capacity is the same.
The paper observes exactly this (gmean speedup 2.23x on the torus versus
3.39x on the H tree).
"""

from __future__ import annotations

import math
from typing import Sequence

import networkx as nx

from repro.interconnect.topology import Topology, hierarchical_groups


def _grid_dimensions(num_accelerators: int) -> tuple[int, int]:
    """Closest-to-square ``rows x cols`` factorisation of the array size."""
    rows = int(math.isqrt(num_accelerators))
    while rows > 1 and num_accelerators % rows:
        rows -= 1
    return rows, num_accelerators // rows


class TorusTopology(Topology):
    """2-D torus with row-major placement of accelerators.

    By default accelerator ``i`` sits at grid position
    ``(i // cols, i % cols)``; the hierarchical groups of the partition
    therefore correspond to contiguous blocks of rows/columns, the natural
    placement a system integrator would choose.  ``placement`` overrides
    this: ``placement[i]`` is the row-major grid cell accelerator ``i``
    occupies, so scrambled or legacy floorplans -- where the pair
    boundaries of one hierarchy level are *not* isomorphic -- can be
    modelled too.
    """

    name = "torus"

    def __init__(
        self,
        num_accelerators: int,
        link_bandwidth_bytes: float,
        placement: Sequence[int] | None = None,
    ) -> None:
        super().__init__(num_accelerators, link_bandwidth_bytes)
        self.rows, self.cols = _grid_dimensions(num_accelerators)
        if placement is None:
            self.placement: tuple[int, ...] = tuple(range(num_accelerators))
        else:
            self.placement = tuple(int(cell) for cell in placement)
            if sorted(self.placement) != list(range(num_accelerators)):
                raise ValueError(
                    "placement must be a permutation of the grid cells "
                    f"0..{num_accelerators - 1}, got {placement!r}"
                )

    def _position(self, index: int) -> tuple[int, int]:
        cell = self.placement[index]
        return cell // self.cols, cell % self.cols

    def _build_graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_accelerators), kind="accelerator")
        occupant = {cell: index for index, cell in enumerate(self.placement)}
        for index in range(self.num_accelerators):
            row, col = self._position(index)
            right = occupant[row * self.cols + (col + 1) % self.cols]
            down = occupant[((row + 1) % self.rows) * self.cols + col]
            # A ring of two nodes would create duplicate edges; Graph
            # deduplicates them, which is the correct physical model (a
            # single link, not two).
            if right != index:
                graph.add_edge(index, right, bandwidth=self.link_bandwidth_bytes)
            if down != index:
                graph.add_edge(index, down, bandwidth=self.link_bandwidth_bytes)
        return graph

    @staticmethod
    def _mean_over_boundaries(values: Sequence[float]) -> float:
        # Under the default row-major placement every boundary of a level is
        # a torus translate of the first, so the values coincide; returning
        # the common value directly keeps those metrics bit-identical to the
        # single-boundary computation (no sum/divide rounding).
        if all(value == values[0] for value in values):
            return values[0]
        return sum(values) / len(values)

    def _boundary_effective_bandwidth(self, left: list[int], right: list[int]) -> float:
        cut = self._direct_cut_bandwidth(left, right)
        if cut <= 0:
            # Degenerate placement with no direct link between the groups:
            # fall back to the whole-array cut, still discounted by distance.
            cut = self._cut_bandwidth(left, right)
        hops = max(1.0, self._mean_pair_distance(left, right))
        return cut / hops

    def _compute_effective_pair_bandwidth(self, level: int) -> float:
        """Bandwidth joining the two groups of a boundary, discounted by path length.

        For each boundary only the links whose both endpoints belong to the
        pair are counted (the rest of the mesh is busy carrying the other
        boundaries' traffic at the same level), and every word exchanged
        occupies on average that boundary's mean hop count of physical
        links, so the usable throughput of the boundary is its direct cut
        capacity divided by the hop count.  The level's figure is the mean
        over *all* boundaries of the level -- a level's pairs need not be
        isomorphic (a scrambled placement on a rectangular grid breaks the
        translate symmetry), so deriving the level metric from the first
        pair alone would mis-price every other boundary.  This is what
        makes the torus lose to the H tree: the binary-tree traffic pattern
        of the hierarchical partition is served by dedicated fat-tree
        links, while on the mesh it zig-zags across shared ones.
        """
        pairs = hierarchical_groups(self.num_accelerators, level)
        return self._mean_over_boundaries(
            [self._boundary_effective_bandwidth(left, right) for left, right in pairs]
        )

    def _compute_average_hops(self, level: int) -> float:
        """Mean shortest-path hop count between the groups, over all boundaries.

        Every boundary at a level pairs the same number of accelerators, so
        the unweighted mean over boundaries equals the mean over all
        exchanged words.
        """
        pairs = hierarchical_groups(self.num_accelerators, level)
        return self._mean_over_boundaries(
            [self._mean_pair_distance(left, right) for left, right in pairs]
        )
