"""Interconnect topologies for the accelerator array.

The paper connects its sixteen accelerators either with an H tree (a fat
tree whose per-level bandwidth matches the hierarchical partition's traffic
pattern) or with a 2-D torus; Section 6.5.1 compares the two.  This package
provides both, plus routing utilities, on top of networkx graphs.
"""

from repro.interconnect.htree import HTreeTopology
from repro.interconnect.routing import (
    bisection_bandwidth,
    link_loads,
    max_link_load,
    pairwise_hop_matrix,
    shortest_path_hops,
)
from repro.interconnect.topology import Topology, hierarchical_groups
from repro.interconnect.torus import TorusTopology

#: Topologies addressable by name from the CLI / experiment drivers.
TOPOLOGIES = {
    "h-tree": HTreeTopology,
    "htree": HTreeTopology,
    "torus": TorusTopology,
}


def build_topology(name: str, num_accelerators: int, link_bandwidth_bytes: float) -> Topology:
    """Instantiate a topology by name (``"h-tree"`` or ``"torus"``)."""
    normalized = name.strip().lower().replace("_", "-")
    if normalized not in TOPOLOGIES:
        known = ", ".join(sorted(set(TOPOLOGIES)))
        raise KeyError(f"unknown topology {name!r}; known topologies: {known}")
    return TOPOLOGIES[normalized](num_accelerators, link_bandwidth_bytes)


__all__ = [
    "Topology",
    "HTreeTopology",
    "TorusTopology",
    "TOPOLOGIES",
    "build_topology",
    "hierarchical_groups",
    "bisection_bandwidth",
    "pairwise_hop_matrix",
    "shortest_path_hops",
    "link_loads",
    "max_link_load",
]
