"""H-tree (fat-tree) interconnect.

Figure 4(c) of the paper connects the sixteen accelerators with an H tree.
Physically it is a fat tree: switches sit at the parent nodes, and the
bandwidth between groups at a higher hierarchy level is doubled compared to
the level below (while the number of links is halved), so every level of
the tree has the same aggregate bisection bandwidth.  This matches the
communication pattern produced by the hierarchical partition exactly, which
is why the paper prefers it over the torus.
"""

from __future__ import annotations

import networkx as nx

from repro.interconnect.topology import Topology, hierarchical_groups


class HTreeTopology(Topology):
    """Fat-tree / H-tree interconnect matched to the hierarchical partition.

    Level ``num_levels - 1`` (the deepest level, pairs of individual
    accelerators) uses single links of the base bandwidth; each level above
    doubles the per-boundary bandwidth.
    """

    name = "h-tree"

    def _build_graph(self) -> nx.Graph:
        graph = nx.Graph()
        num_leaves = self.num_accelerators
        graph.add_nodes_from(range(num_leaves), kind="accelerator")

        # Build the binary tree bottom-up.  Leaf links carry the base
        # bandwidth; every level up doubles the link bandwidth.
        current_level_nodes: list = list(range(num_leaves))
        bandwidth = self.link_bandwidth_bytes
        depth = 0
        while len(current_level_nodes) > 1:
            next_level_nodes = []
            for pair_index in range(0, len(current_level_nodes), 2):
                switch = f"switch_d{depth}_{pair_index // 2}"
                graph.add_node(switch, kind="switch")
                graph.add_edge(
                    current_level_nodes[pair_index], switch, bandwidth=bandwidth
                )
                graph.add_edge(
                    current_level_nodes[pair_index + 1], switch, bandwidth=bandwidth
                )
                next_level_nodes.append(switch)
            current_level_nodes = next_level_nodes
            bandwidth *= 2
            depth += 1
        return graph

    def _compute_effective_pair_bandwidth(self, level: int) -> float:
        """Per-boundary bandwidth: doubles for every level above the deepest.

        With ``H`` levels, the deepest level (``H-1``) gets the base link
        bandwidth and level ``h`` gets ``2**(H-1-h)`` times that, exactly the
        "doubled bandwidth, halved link count" fat-tree rule of Section
        6.5.1.  Because the tree dedicates those links to that boundary,
        no contention discount is applied.
        """
        return self.link_bandwidth_bytes * (2 ** (self.num_levels - 1 - level))

    def _compute_average_hops(self, level: int) -> float:
        """Average hops: up to the common ancestor at depth ``level`` and back down."""
        pairs = hierarchical_groups(self.num_accelerators, level)
        left, right = pairs[0]
        return self._mean_pair_distance(left, right)
