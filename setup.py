"""Setup script for the HyPar reproduction.

A classic setuptools script (rather than a PEP 517 pyproject build) is used
deliberately so that ``pip install -e .`` works in fully offline
environments that lack the ``wheel`` package and cannot reach PyPI for
build isolation.
"""

from setuptools import find_packages, setup


def _read_readme() -> str:
    try:
        with open("README.md", encoding="utf-8") as handle:
            return handle.read()
    except OSError:
        return ""


setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of HyPar: Towards Hybrid Parallelism for Deep Learning "
        "Accelerator Array (HPCA 2019)"
    ),
    long_description=_read_readme(),
    long_description_content_type="text/markdown",
    author="HyPar Reproduction Authors",
    license="MIT",
    # Matches the CI matrix (3.11/3.12) and the pinned numpy in
    # requirements-ci.txt; older interpreters are untested.
    python_requires=">=3.11",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # The shipped cost-model profile packs (repro/core/profiles/*.json)
    # must travel with the package for `--cost-model profiled:<pack>`.
    package_data={"repro.core": ["profiles/*.json"]},
    include_package_data=True,
    install_requires=[
        "numpy",
        "networkx",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis", "scipy"],
    },
    entry_points={
        "console_scripts": [
            "hypar = repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Intended Audience :: Science/Research",
    ],
    keywords=(
        "deep-learning accelerator parallelism hybrid-parallelism dnn-training "
        "architecture-simulation"
    ),
)
