#!/usr/bin/env python
"""Partition every ImageNet-scale network and reproduce the headline tables.

This example drives the same machinery as the paper's Figures 5-8, but
restricted to the ImageNet models (AlexNet and the VGG family), which are
the workloads the paper's introduction motivates: large models whose
training traffic dominates an accelerator array.

For every network it prints

* the per-level hybrid parallelism HyPar selects,
* the simulated speedup and energy efficiency over default Data Parallelism,
* the communication-per-step reduction.

Run with::

    python examples/partition_imagenet_models.py
"""

from __future__ import annotations

import sys

from repro.analysis.experiments import (
    DATA_PARALLELISM,
    HYPAR,
    MODEL_PARALLELISM,
    ExperimentRunner,
)
from repro.analysis.report import format_table, geometric_mean
from repro.nn.model_zoo import get_model

IMAGENET_MODELS = ("AlexNet", "VGG-A", "VGG-B", "VGG-C", "VGG-D", "VGG-E")


def main() -> int:
    runner = ExperimentRunner()  # 16 accelerators, H tree, batch 256

    print("Optimized hybrid parallelism per hierarchy level")
    print("=" * 64)
    for name in IMAGENET_MODELS:
        result = runner.optimized_parallelism(get_model(name))
        print(result.describe())
        print()

    print("Strategy comparison (normalized to Data Parallelism)")
    print("=" * 64)
    table = runner.run([get_model(name) for name in IMAGENET_MODELS])
    strategies = [MODEL_PARALLELISM, DATA_PARALLELISM, HYPAR]
    print(format_table("Performance", table.performance(), strategies))
    print()
    print(format_table("Energy efficiency", table.energy_efficiency(), strategies))
    print()
    print(format_table("Communication per step (GB)", table.communication(), strategies))
    print()

    hypar_gain = geometric_mean(
        row[HYPAR] for row in table.performance().values()
    )
    print(
        f"HyPar geometric-mean speedup over Data Parallelism on the ImageNet "
        f"models: {hypar_gain:.2f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
