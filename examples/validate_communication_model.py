#!/usr/bin/env python
"""Validate the communication model against a real (numpy) partitioned step.

The HyPar cost model claims (Tables 1 and 2) that specific tensor exchanges
are necessary and sufficient to keep a partitioned training step numerically
identical to the unpartitioned one.  This example *checks that claim
end-to-end*:

1. a small conv+fc network is trained for one step monolithically with the
   numpy reference implementation;
2. the same step is executed with the tensors split across two accelerator
   groups, for every possible dp/mp assignment, with every partial-sum
   reduction and boundary re-layout performed explicitly;
3. the activations, errors and weight gradients are compared element-wise,
   and the bytes actually exchanged are compared with the analytical
   communication model.

It then prints the per-assignment communication so you can see the dp/mp
trade-off of Section 3.4 emerge from real arithmetic.

Run with::

    python examples/validate_communication_model.py
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core.communication import CommunicationModel
from repro.core.execution import TwoGroupExecutor
from repro.core.parallelism import LayerAssignment
from repro.core.tensors import model_tensors
from repro.nn.layers import Activation, ConvLayer, FCLayer
from repro.nn.model import build_model
from repro.nn.reference import ReferenceNetwork

BATCH = 16


def build_network() -> ReferenceNetwork:
    model = build_model(
        "validation-net",
        (12, 12, 3),
        [
            ConvLayer(name="conv1", out_channels=8, kernel_size=3, activation=Activation.RELU),
            ConvLayer(
                name="conv2", out_channels=8, kernel_size=3, padding=1, activation=Activation.RELU
            ),
            FCLayer(name="fc1", out_features=32, activation=Activation.RELU),
            FCLayer(name="fc2", out_features=10, activation=Activation.NONE),
        ],
    )
    return ReferenceNetwork(model, seed=42)


def main() -> int:
    network = build_network()
    model = network.model
    x = network.random_batch(BATCH, seed=7)
    grad_output = np.random.default_rng(8).standard_normal((BATCH, 10))

    reference = network.training_step(x, grad_output)
    comm_model = CommunicationModel()
    tensors = model_tensors(model, BATCH)

    print(f"network: {model.name} ({len(model)} weighted layers), batch {BATCH}")
    print(f"checking all {2 ** len(model)} dp/mp assignments against the monolithic step\n")
    print(f"{'assignment':<14s} {'max |error|':>12s} {'measured KB':>12s} "
          f"{'predicted KB':>13s}")

    worst_error = 0.0
    best = None
    for bits in range(1 << len(model)):
        assignment = LayerAssignment.from_codes(bits, len(model))
        result = TwoGroupExecutor(network, assignment).run_step(x, grad_output)

        max_error = max(
            float(np.max(np.abs(result.gradients[i] - reference[i].grad_weight)))
            for i in range(len(model))
        )
        max_error = max(
            max_error, float(np.max(np.abs(result.output - reference[-1].output)))
        )
        worst_error = max(worst_error, max_error)

        measured_bytes = result.total_elements() * comm_model.bytes_per_element
        predicted_bytes = comm_model.total_bytes(tensors, assignment)
        if not np.isclose(measured_bytes, predicted_bytes):
            raise AssertionError(
                f"communication mismatch for {assignment}: "
                f"{measured_bytes} vs {predicted_bytes}"
            )
        if best is None or measured_bytes < best[1]:
            best = (assignment, measured_bytes)

        print(
            f"{str(assignment):<14s} {max_error:>12.2e} "
            f"{measured_bytes / 1e3:>12.1f} {predicted_bytes / 1e3:>13.1f}"
        )

    print(
        f"\nevery assignment matched the monolithic step "
        f"(worst element-wise error {worst_error:.2e})"
    )
    print(
        f"cheapest assignment by actual measured traffic: {best[0]} "
        f"({best[1] / 1e3:.1f} KB) -- conv layers dp, fc layers mp, exactly the "
        "hybrid pattern HyPar searches for"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
