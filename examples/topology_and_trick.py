#!/usr/bin/env python
"""Two design studies: interconnect topology and the "one weird trick" rule.

Part 1 (Figure 12): the same HyPar partition is run on an H-tree and on a
2-D torus interconnect.  The binary-tree communication pattern produced by
the hierarchical partition matches the fat tree, so the torus loses even
though its raw link count is similar.

Part 2 (Figure 13 / Section 6.5.2): Krizhevsky's "one weird trick" assigns
data parallelism to convolutional layers and model parallelism to
fully-connected layers by rule.  The example reproduces the paper's
analysis of why the rule breaks -- conv5 of VGG-E at small batches and fc3
at large batches -- and quantifies HyPar's advantage.

Run with::

    python examples/topology_and_trick.py
"""

from __future__ import annotations

import sys

from repro.analysis.topology_study import run_topology_study
from repro.analysis.trick_study import run_trick_study
from repro.core.tensors import layer_tensors
from repro.nn.model_zoo import get_model, vgg_e


def topology_study() -> None:
    print("Part 1: H tree versus torus (normalized to Data Parallelism on the H tree)")
    print("=" * 76)
    models = [get_model(name) for name in ("Lenet-c", "AlexNet", "VGG-A", "VGG-E")]
    study = run_topology_study(models=models)
    print(f"{'model':<10s} {'torus':>8s} {'H tree':>8s} {'H-tree advantage':>18s}")
    for comparison in study.comparisons:
        print(
            f"{comparison.model_name:<10s} {comparison.torus_performance:>7.2f}x "
            f"{comparison.htree_performance:>7.2f}x "
            f"{comparison.htree_advantage:>17.2f}x"
        )
    print(
        f"{'gmean':<10s} {study.gmean_torus():>7.2f}x {study.gmean_htree():>7.2f}x"
    )
    print()


def trick_analysis() -> None:
    print('Part 2: why "one weird trick" breaks (Section 6.5.2)')
    print("=" * 76)
    model = vgg_e()
    conv5 = model.layer_by_name("conv5_4")
    fc3 = model.layer_by_name("fc3")

    conv5_tensors = layer_tensors(conv5, batch_size=32)
    fc3_tensors = layer_tensors(fc3, batch_size=4096)
    print(
        "conv5 at batch 32:   A(dW) = "
        f"{conv5_tensors.gradient:,.0f} elements, A(F_out) = "
        f"{conv5_tensors.feature_out:,.0f} elements"
    )
    print(
        "  -> the gradient is the smaller tensor only while the whole batch is"
        " together; once the hierarchy splits the batch, the output map shrinks"
        " below the gradient and the layer prefers model parallelism, which the"
        " trick never picks for a conv layer."
    )
    print(
        "fc3 at batch 4096:   A(dW) = "
        f"{fc3_tensors.gradient:,.0f} elements, A(F_out) = "
        f"{fc3_tensors.feature_out:,.0f} elements"
    )
    print(
        "  -> the intra-layer amounts tie, and the dp-dp inter-layer transition"
        " is free, so data parallelism wins -- but the trick forces model"
        " parallelism on every fc layer."
    )
    print()

    study = run_trick_study()
    print(f"{'configuration':<16s} {'performance':>12s} {'energy efficiency':>18s}")
    for comparison in study.comparisons:
        print(
            f"{comparison.label:<16s} {comparison.performance_ratio:>11.2f}x "
            f"{comparison.energy_ratio:>17.2f}x"
        )
    print(
        f"{'gmean':<16s} {study.gmean_performance():>11.2f}x "
        f"{study.gmean_energy():>17.2f}x"
    )
    print(f"best case: HyPar is {study.max_performance():.2f}x faster than the trick")


def main() -> int:
    topology_study()
    trick_analysis()
    return 0


if __name__ == "__main__":
    sys.exit(main())
