#!/usr/bin/env python
"""Scalability study: how far does each strategy scale before communication wins?

Reproduces the Figure 11 experiment: VGG-A trained on arrays of 1 to 64
accelerators, under HyPar and under the default Data Parallelism.  The
interesting output is the *shape* of the two curves -- Data Parallelism's
speedup saturates once gradient exchanges dominate the step time, while
HyPar keeps scaling because its hybrid assignment moves roughly an order of
magnitude less data.

The example also breaks one configuration down by phase so you can see
where the time goes.

Run with::

    python examples/scalability_study.py [model-name]
"""

from __future__ import annotations

import sys

from repro import ArrayConfig, HierarchicalPartitioner, TrainingSimulator, get_model
from repro.analysis.scalability import run_scalability_study
from repro.core.baselines import data_parallelism

ARRAY_SIZES = (1, 2, 4, 8, 16, 32, 64)
BATCH_SIZE = 256


def print_curves(model_name: str) -> None:
    study = run_scalability_study(model=get_model(model_name), array_sizes=ARRAY_SIZES)
    print(f"Scalability of {model_name} (batch {BATCH_SIZE}, H-tree array)")
    print(
        f"{'accelerators':>13s} {'HyPar gain':>11s} {'DP gain':>9s} "
        f"{'HyPar GB':>10s} {'DP GB':>8s}"
    )
    for row in study.as_rows():
        print(
            f"{row['num_accelerators']:>13d} {row['hypar_gain']:>10.2f}x "
            f"{row['dp_gain']:>8.2f}x {row['hypar_comm_gb']:>10.3f} "
            f"{row['dp_comm_gb']:>8.2f}"
        )
    rows = {row["num_accelerators"]: row for row in study.as_rows()}
    if 16 in rows and 64 in rows:
        dp_growth = rows[64]["dp_gain"] / rows[16]["dp_gain"] - 1.0
        hypar_growth = rows[64]["hypar_gain"] / rows[16]["hypar_gain"] - 1.0
        print(
            f"\nGoing from 16 to 64 accelerators, Data Parallelism improves by only "
            f"{dp_growth * 100:.0f}% (its gradient exchanges saturate the array) "
            f"while HyPar still improves by {hypar_growth * 100:.0f}%."
        )


def print_phase_breakdown(model_name: str, num_accelerators: int = 16) -> None:
    model = get_model(model_name)
    array = ArrayConfig(num_accelerators=num_accelerators)
    simulator = TrainingSimulator(array)
    partitioner = HierarchicalPartitioner(num_levels=array.num_levels)
    hypar = simulator.simulate(
        model, partitioner.partition(model, BATCH_SIZE).assignment, BATCH_SIZE, "HyPar"
    )
    dp = simulator.simulate(
        model, data_parallelism(model, array.num_levels), BATCH_SIZE, "Data Parallelism"
    )

    print(f"\nPhase breakdown at {num_accelerators} accelerators (ms):")
    print(f"{'phase':<10s} {'HyPar compute':>14s} {'HyPar comm':>11s} "
          f"{'DP compute':>11s} {'DP comm':>9s}")
    for phase in ("forward", "backward", "gradient"):
        h = hypar.phase_seconds[phase]
        d = dp.phase_seconds[phase]
        print(
            f"{phase:<10s} {h.compute_seconds * 1e3:>14.2f} "
            f"{h.communication_seconds * 1e3:>11.2f} "
            f"{d.compute_seconds * 1e3:>11.2f} {d.communication_seconds * 1e3:>9.2f}"
        )


def main() -> int:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "VGG-A"
    print_curves(model_name)
    print_phase_breakdown(model_name)
    return 0


if __name__ == "__main__":
    sys.exit(main())
