#!/usr/bin/env python
"""Quickstart: partition one network and compare against the default strategies.

This is the five-minute tour of the library:

1. pick a network from the model zoo (AlexNet here);
2. run HyPar's hierarchical partition search for the paper's
   sixteen-accelerator array;
3. simulate one training step under HyPar, default Data Parallelism and
   default Model Parallelism;
4. print the per-layer parallelism choices and the resulting speedups.

Run with::

    python examples/quickstart.py [model-name]
"""

from __future__ import annotations

import sys

from repro import ArrayConfig, HierarchicalPartitioner, TrainingSimulator, get_model
from repro.core.baselines import data_parallelism, model_parallelism

BATCH_SIZE = 256


def main() -> int:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "AlexNet"
    model = get_model(model_name)
    print(model.summary())
    print()

    # Step 1: search the hybrid parallelism for a 16-accelerator array.
    array = ArrayConfig()  # 16 HMC-based accelerators, H-tree, 1600 Mb/s links
    partitioner = HierarchicalPartitioner(num_levels=array.num_levels)
    result = partitioner.partition(model, batch_size=BATCH_SIZE)
    print("HyPar's optimized parallelism (Figure 5 style):")
    print(result.describe())
    print()

    # Step 2: simulate one training step under the three strategies.
    simulator = TrainingSimulator(array)
    reports = {
        "Model Parallelism": simulator.simulate(
            model, model_parallelism(model, array.num_levels), BATCH_SIZE, "Model Parallelism"
        ),
        "Data Parallelism": simulator.simulate(
            model, data_parallelism(model, array.num_levels), BATCH_SIZE, "Data Parallelism"
        ),
        "HyPar": simulator.simulate(model, result.assignment, BATCH_SIZE, "HyPar"),
    }

    baseline = reports["Data Parallelism"]
    print(f"{'strategy':<20s} {'ms/step':>10s} {'J/step':>10s} {'GB comm':>10s} "
          f"{'speedup':>9s} {'energy eff':>11s}")
    for name, report in reports.items():
        print(
            f"{name:<20s} {report.step_seconds * 1e3:>10.2f} "
            f"{report.energy_joules:>10.2f} {report.communication_gb:>10.3f} "
            f"{report.speedup_over(baseline):>8.2f}x "
            f"{report.energy_efficiency_over(baseline):>10.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
