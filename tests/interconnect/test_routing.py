"""Tests for the routing helpers."""

import pytest

from repro.interconnect.htree import HTreeTopology
from repro.interconnect.routing import (
    bisection_bandwidth,
    link_loads,
    max_link_load,
    pairwise_hop_matrix,
    shortest_path_hops,
)
from repro.interconnect.torus import TorusTopology

LINK = 200e6


class TestShortestPathHops:
    def test_adjacent_torus_nodes(self):
        topology = TorusTopology(16, LINK)
        assert shortest_path_hops(topology, 0, 1) == 1

    def test_torus_wraparound_shortens_paths(self):
        topology = TorusTopology(16, LINK)
        assert shortest_path_hops(topology, 0, 3) == 1

    def test_htree_siblings_two_hops(self):
        topology = HTreeTopology(16, LINK)
        assert shortest_path_hops(topology, 0, 1) == 2

    def test_htree_cross_array_path_length(self):
        topology = HTreeTopology(16, LINK)
        assert shortest_path_hops(topology, 0, 15) == 8


class TestBisectionBandwidth:
    def test_htree_bisection(self):
        topology = HTreeTopology(16, LINK)
        # Cutting at the root severs one of its two 8x child links (the root
        # switch itself sits on one side of the bisection).
        assert bisection_bandwidth(topology) == pytest.approx(8 * LINK)

    def test_torus_bisection(self):
        topology = TorusTopology(16, LINK)
        # A 4x4 torus bisected between rows 1|2 (and the wrap rows 3|0) cuts 8 links.
        assert bisection_bandwidth(topology) == pytest.approx(8 * LINK)


class TestPairwiseHopMatrix:
    def test_matrix_covers_all_ordered_pairs(self):
        topology = TorusTopology(4, LINK)
        matrix = pairwise_hop_matrix(topology)
        assert len(matrix) == 4 * 3

    def test_matrix_is_symmetric(self):
        topology = TorusTopology(16, LINK)
        matrix = pairwise_hop_matrix(topology)
        for (a, b), hops in matrix.items():
            assert matrix[(b, a)] == hops


class TestLinkLoads:
    def test_zero_traffic_means_zero_loads(self):
        topology = TorusTopology(16, LINK)
        loads = link_loads(topology, [0.0, 0.0, 0.0, 0.0])
        assert all(value == 0.0 for value in loads.values())

    def test_total_load_at_least_injected_traffic(self):
        """Multi-hop routing carries each byte over at least one link."""
        topology = TorusTopology(16, LINK)
        traffic = [1e6, 0.0, 0.0, 0.0]
        loads = link_loads(topology, traffic)
        assert sum(loads.values()) >= 1e6

    def test_htree_top_level_traffic_loads_root_links(self):
        topology = HTreeTopology(4, LINK)
        loads = link_loads(topology, [1e6, 0.0])
        assert max(loads.values()) > 0

    def test_max_link_load(self):
        topology = TorusTopology(16, LINK)
        assert max_link_load(topology, [1e6, 1e6, 1e6, 1e6]) > 0
        assert max_link_load(topology, [0, 0, 0, 0]) == 0

    def test_negative_traffic_rejected(self):
        topology = TorusTopology(16, LINK)
        with pytest.raises(ValueError):
            link_loads(topology, [-1.0, 0, 0, 0])
