"""Tests for the 2-D torus topology."""

import pytest

from repro.interconnect.htree import HTreeTopology
from repro.interconnect.topology import hierarchical_groups
from repro.interconnect.torus import TorusTopology, _grid_dimensions

LINK = 200e6


class TestGridDimensions:
    @pytest.mark.parametrize(
        "count,expected",
        [(4, (2, 2)), (8, (2, 4)), (16, (4, 4)), (64, (8, 8)), (32, (4, 8))],
    )
    def test_closest_to_square_factorisation(self, count, expected):
        assert _grid_dimensions(count) == expected


class TestStructure:
    def test_4x4_torus_degree(self):
        topology = TorusTopology(16, LINK)
        for index in range(16):
            assert topology.graph.degree[index] == 4

    def test_4x4_torus_edge_count(self):
        # 2 links per node in a 2-D torus (right + down), no duplicates.
        topology = TorusTopology(16, LINK)
        assert topology.graph.number_of_edges() == 32

    def test_all_links_have_uniform_bandwidth(self):
        topology = TorusTopology(16, LINK)
        bandwidths = {data["bandwidth"] for _, _, data in topology.graph.edges(data=True)}
        assert bandwidths == {LINK}

    def test_wraparound_links_exist(self):
        topology = TorusTopology(16, LINK)
        # Node 0 (row 0, col 0) connects to node 3 (row 0, col 3) and node 12.
        assert topology.graph.has_edge(0, 3)
        assert topology.graph.has_edge(0, 12)

    def test_small_2x2_torus_has_no_duplicate_edges(self):
        topology = TorusTopology(4, LINK)
        assert topology.graph.number_of_edges() == 4


class TestEffectiveBandwidth:
    def test_bandwidth_positive_at_every_level(self):
        topology = TorusTopology(16, LINK)
        for level in range(4):
            assert topology.effective_pair_bandwidth(level) > 0

    def test_torus_never_beats_htree_at_any_level(self):
        """The mismatch with the binary-tree traffic pattern (Section 6.5.1)."""
        torus = TorusTopology(16, LINK)
        htree = HTreeTopology(16, LINK)
        for level in range(4):
            assert torus.effective_pair_bandwidth(level) <= htree.effective_pair_bandwidth(
                level
            ) + 1e-9

    def test_torus_strictly_worse_at_the_top_level(self):
        torus = TorusTopology(16, LINK)
        htree = HTreeTopology(16, LINK)
        assert torus.effective_pair_bandwidth(0) < htree.effective_pair_bandwidth(0)

    def test_deepest_level_uses_the_direct_link(self):
        topology = TorusTopology(16, LINK)
        # Adjacent accelerators share exactly one physical link, one hop away.
        assert topology.effective_pair_bandwidth(3) == pytest.approx(LINK)
        assert topology.average_hops(3) == pytest.approx(1.0)


class TestHops:
    def test_hops_grow_with_group_distance(self):
        topology = TorusTopology(16, LINK)
        assert topology.average_hops(0) > topology.average_hops(3)

    def test_hops_bounded_by_torus_diameter(self):
        topology = TorusTopology(16, LINK)
        # A 4x4 torus has diameter 4.
        for level in range(4):
            assert topology.average_hops(level) <= 4.0


def _boundary_mean_metrics(topology: TorusTopology, level: int) -> tuple[float, float]:
    """Independent recomputation: metrics averaged over every pair boundary."""
    pairs = hierarchical_groups(topology.num_accelerators, level)
    bandwidths = []
    hop_counts = []
    for left, right in pairs:
        cut = topology._direct_cut_bandwidth(left, right)
        if cut <= 0:
            cut = topology._cut_bandwidth(left, right)
        hops = topology._mean_pair_distance(left, right)
        bandwidths.append(cut / max(1.0, hops))
        hop_counts.append(hops)
    return sum(bandwidths) / len(bandwidths), sum(hop_counts) / len(hop_counts)


class TestBoundaryAveraging:
    """Level metrics must average over *all* boundaries, not just ``pairs[0]``.

    The historical implementation derived both metrics from the first pair
    boundary alone, implicitly assuming every boundary at a level is
    isomorphic.  That holds for the contiguous row-major placement (every
    boundary is a torus translate of the first) but breaks on rectangular
    tori with a non-contiguous placement, where different boundaries see
    different cut capacities and hop counts.
    """

    #: A fixed scrambled placement of 16 accelerators on the grid:
    #: hierarchical neighbours land in scattered cells, so the boundaries
    #: of levels 1-3 differ in both cut capacity and hop count.
    SCRAMBLED_16 = (3, 14, 7, 9, 13, 11, 4, 5, 12, 8, 1, 0, 15, 6, 2, 10)

    @pytest.mark.parametrize("num_accelerators", [8, 32])
    def test_rectangular_torus_metrics_average_all_boundaries(self, num_accelerators):
        """Regression: rectangular (non-square) grids report the boundary mean."""
        topology = TorusTopology(num_accelerators, LINK)
        assert topology.rows != topology.cols
        for level in range(topology.num_levels):
            expected_bandwidth, expected_hops = _boundary_mean_metrics(topology, level)
            assert topology.effective_pair_bandwidth(level) == pytest.approx(
                expected_bandwidth
            )
            assert topology.average_hops(level) == pytest.approx(expected_hops)

    def test_scrambled_placement_metrics_average_all_boundaries(self):
        """With non-isomorphic boundaries the first pair is not representative."""
        topology = TorusTopology(16, LINK, placement=self.SCRAMBLED_16)
        saw_asymmetry = False
        for level in range(topology.num_levels):
            expected_bandwidth, expected_hops = _boundary_mean_metrics(topology, level)
            assert topology.effective_pair_bandwidth(level) == pytest.approx(
                expected_bandwidth
            )
            assert topology.average_hops(level) == pytest.approx(expected_hops)

            # The old pairs[0]-only computation must disagree somewhere,
            # otherwise this test could not catch a regression to it.
            left, right = hierarchical_groups(16, level)[0]
            first_pair_hops = topology._mean_pair_distance(left, right)
            if first_pair_hops != pytest.approx(expected_hops):
                saw_asymmetry = True
        assert saw_asymmetry

    def test_default_square_torus_unchanged_by_averaging(self):
        """Row-major boundaries are translates: the mean equals every pair's value."""
        topology = TorusTopology(16, LINK)
        for level in range(topology.num_levels):
            pairs = hierarchical_groups(16, level)
            per_pair = [topology._mean_pair_distance(left, right) for left, right in pairs]
            assert all(hops == per_pair[0] for hops in per_pair)
            assert topology.average_hops(level) == per_pair[0]

    def test_placement_must_be_a_permutation(self):
        with pytest.raises(ValueError):
            TorusTopology(4, LINK, placement=(0, 0, 1, 2))

    def test_identity_placement_builds_the_same_graph(self):
        default = TorusTopology(16, LINK)
        explicit = TorusTopology(16, LINK, placement=tuple(range(16)))
        assert set(default.graph.edges) == set(explicit.graph.edges)
