"""Tests for the 2-D torus topology."""

import pytest

from repro.interconnect.htree import HTreeTopology
from repro.interconnect.torus import TorusTopology, _grid_dimensions

LINK = 200e6


class TestGridDimensions:
    @pytest.mark.parametrize(
        "count,expected",
        [(4, (2, 2)), (8, (2, 4)), (16, (4, 4)), (64, (8, 8)), (32, (4, 8))],
    )
    def test_closest_to_square_factorisation(self, count, expected):
        assert _grid_dimensions(count) == expected


class TestStructure:
    def test_4x4_torus_degree(self):
        topology = TorusTopology(16, LINK)
        for index in range(16):
            assert topology.graph.degree[index] == 4

    def test_4x4_torus_edge_count(self):
        # 2 links per node in a 2-D torus (right + down), no duplicates.
        topology = TorusTopology(16, LINK)
        assert topology.graph.number_of_edges() == 32

    def test_all_links_have_uniform_bandwidth(self):
        topology = TorusTopology(16, LINK)
        bandwidths = {data["bandwidth"] for _, _, data in topology.graph.edges(data=True)}
        assert bandwidths == {LINK}

    def test_wraparound_links_exist(self):
        topology = TorusTopology(16, LINK)
        # Node 0 (row 0, col 0) connects to node 3 (row 0, col 3) and node 12.
        assert topology.graph.has_edge(0, 3)
        assert topology.graph.has_edge(0, 12)

    def test_small_2x2_torus_has_no_duplicate_edges(self):
        topology = TorusTopology(4, LINK)
        assert topology.graph.number_of_edges() == 4


class TestEffectiveBandwidth:
    def test_bandwidth_positive_at_every_level(self):
        topology = TorusTopology(16, LINK)
        for level in range(4):
            assert topology.effective_pair_bandwidth(level) > 0

    def test_torus_never_beats_htree_at_any_level(self):
        """The mismatch with the binary-tree traffic pattern (Section 6.5.1)."""
        torus = TorusTopology(16, LINK)
        htree = HTreeTopology(16, LINK)
        for level in range(4):
            assert torus.effective_pair_bandwidth(level) <= htree.effective_pair_bandwidth(
                level
            ) + 1e-9

    def test_torus_strictly_worse_at_the_top_level(self):
        torus = TorusTopology(16, LINK)
        htree = HTreeTopology(16, LINK)
        assert torus.effective_pair_bandwidth(0) < htree.effective_pair_bandwidth(0)

    def test_deepest_level_uses_the_direct_link(self):
        topology = TorusTopology(16, LINK)
        # Adjacent accelerators share exactly one physical link, one hop away.
        assert topology.effective_pair_bandwidth(3) == pytest.approx(LINK)
        assert topology.average_hops(3) == pytest.approx(1.0)


class TestHops:
    def test_hops_grow_with_group_distance(self):
        topology = TorusTopology(16, LINK)
        assert topology.average_hops(0) > topology.average_hops(3)

    def test_hops_bounded_by_torus_diameter(self):
        topology = TorusTopology(16, LINK)
        # A 4x4 torus has diameter 4.
        for level in range(4):
            assert topology.average_hops(level) <= 4.0
