"""Tests for the topology base machinery (hierarchical groups, cuts)."""

import pytest

from repro.interconnect.htree import HTreeTopology
from repro.interconnect.topology import hierarchical_groups
from repro.interconnect.torus import TorusTopology

LINK = 200e6  # bytes/s, the paper's 1600 Mb/s link


class TestHierarchicalGroups:
    def test_top_level_bisection(self):
        pairs = hierarchical_groups(16, 0)
        assert len(pairs) == 1
        left, right = pairs[0]
        assert left == list(range(0, 8))
        assert right == list(range(8, 16))

    def test_level_counts_double(self):
        for level in range(4):
            assert len(hierarchical_groups(16, level)) == 2**level

    def test_deepest_level_pairs_individual_accelerators(self):
        pairs = hierarchical_groups(16, 3)
        assert pairs[0] == ([0], [1])
        assert pairs[-1] == ([14], [15])

    def test_groups_partition_the_array(self):
        for level in range(4):
            members = []
            for left, right in hierarchical_groups(16, level):
                members.extend(left)
                members.extend(right)
            assert sorted(members) == list(range(16))

    def test_too_deep_level_rejected(self):
        with pytest.raises(ValueError):
            hierarchical_groups(8, 3)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            hierarchical_groups(12, 0)

    def test_single_accelerator_rejected(self):
        with pytest.raises(ValueError):
            hierarchical_groups(1, 0)


class TestTopologyCommonBehaviour:
    @pytest.mark.parametrize("topology_cls", [HTreeTopology, TorusTopology])
    def test_graph_contains_all_accelerators(self, topology_cls):
        topology = topology_cls(16, LINK)
        for index in range(16):
            assert index in topology.graph.nodes

    @pytest.mark.parametrize("topology_cls", [HTreeTopology, TorusTopology])
    def test_graph_is_connected(self, topology_cls):
        import networkx as nx

        topology = topology_cls(16, LINK)
        assert nx.is_connected(topology.graph)

    @pytest.mark.parametrize("topology_cls", [HTreeTopology, TorusTopology])
    def test_effective_bandwidth_positive_at_every_level(self, topology_cls):
        topology = topology_cls(16, LINK)
        for level in range(topology.num_levels):
            assert topology.effective_pair_bandwidth(level) > 0

    @pytest.mark.parametrize("topology_cls", [HTreeTopology, TorusTopology])
    def test_average_hops_at_least_one(self, topology_cls):
        topology = topology_cls(16, LINK)
        for level in range(topology.num_levels):
            assert topology.average_hops(level) >= 1.0

    @pytest.mark.parametrize("topology_cls", [HTreeTopology, TorusTopology])
    def test_level_out_of_range_rejected(self, topology_cls):
        topology = topology_cls(16, LINK)
        with pytest.raises(ValueError):
            topology.effective_pair_bandwidth(4)
        with pytest.raises(ValueError):
            topology.average_hops(-1)

    @pytest.mark.parametrize("topology_cls", [HTreeTopology, TorusTopology])
    def test_invalid_construction_rejected(self, topology_cls):
        with pytest.raises(ValueError):
            topology_cls(12, LINK)
        with pytest.raises(ValueError):
            topology_cls(16, 0)
        with pytest.raises(ValueError):
            topology_cls(1, LINK)

    @pytest.mark.parametrize("topology_cls", [HTreeTopology, TorusTopology])
    def test_describe_mentions_name(self, topology_cls):
        topology = topology_cls(16, LINK)
        assert topology.name in topology.describe()


class TestBuildTopologyFactory:
    def test_factory_names(self):
        from repro.interconnect import build_topology

        assert isinstance(build_topology("h-tree", 16, LINK), HTreeTopology)
        assert isinstance(build_topology("htree", 16, LINK), HTreeTopology)
        assert isinstance(build_topology("Torus", 16, LINK), TorusTopology)

    def test_unknown_name_rejected(self):
        from repro.interconnect import build_topology

        with pytest.raises(KeyError):
            build_topology("hypercube", 16, LINK)
