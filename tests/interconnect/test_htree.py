"""Tests for the H-tree (fat-tree) topology."""

import pytest

from repro.interconnect.htree import HTreeTopology

LINK = 200e6


class TestStructure:
    def test_switch_count_for_sixteen_leaves(self):
        topology = HTreeTopology(16, LINK)
        switches = [n for n, d in topology.graph.nodes(data=True) if d.get("kind") == "switch"]
        # A binary tree over 16 leaves has 15 internal nodes.
        assert len(switches) == 15

    def test_every_accelerator_is_a_leaf(self):
        topology = HTreeTopology(16, LINK)
        for index in range(16):
            assert topology.graph.degree[index] == 1

    def test_link_bandwidth_doubles_towards_the_root(self):
        topology = HTreeTopology(8, LINK)
        bandwidths = sorted(
            {data["bandwidth"] for _, _, data in topology.graph.edges(data=True)}
        )
        assert bandwidths == [LINK, 2 * LINK, 4 * LINK]


class TestEffectiveBandwidth:
    def test_deepest_level_gets_base_link_bandwidth(self):
        topology = HTreeTopology(16, LINK)
        assert topology.effective_pair_bandwidth(3) == pytest.approx(LINK)

    def test_bandwidth_doubles_per_level_upward(self):
        """Section 6.5.1: bandwidth between groups in a higher hierarchy is doubled."""
        topology = HTreeTopology(16, LINK)
        for level in range(3):
            assert topology.effective_pair_bandwidth(level) == pytest.approx(
                2 * topology.effective_pair_bandwidth(level + 1)
            )

    def test_top_level_bandwidth(self):
        topology = HTreeTopology(16, LINK)
        assert topology.effective_pair_bandwidth(0) == pytest.approx(8 * LINK)

    def test_aggregate_bandwidth_equal_across_levels(self):
        """Doubled bandwidth but halved link count keeps per-level totals equal."""
        topology = HTreeTopology(16, LINK)
        totals = [
            topology.effective_pair_bandwidth(level) * (1 << level) for level in range(4)
        ]
        assert all(total == pytest.approx(totals[0]) for total in totals)


class TestHops:
    def test_deepest_level_hop_count(self):
        """Adjacent accelerators communicate through one switch: two hops."""
        topology = HTreeTopology(16, LINK)
        assert topology.average_hops(3) == pytest.approx(2.0)

    def test_hops_increase_towards_the_root(self):
        topology = HTreeTopology(16, LINK)
        hops = [topology.average_hops(level) for level in range(4)]
        assert hops == sorted(hops, reverse=True)

    def test_top_level_hops_bounded_by_tree_depth(self):
        topology = HTreeTopology(16, LINK)
        # The longest leaf-to-leaf path in a 4-level binary tree is 8 hops.
        assert topology.average_hops(0) <= 8.0
