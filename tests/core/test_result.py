"""Tests for the result records of the partition algorithms."""

import pytest

from repro.core.communication import LayerCommunication
from repro.core.parallelism import DATA, MODEL, HierarchicalAssignment, LayerAssignment
from repro.core.result import (
    HierarchicalResult,
    LevelResult,
    PartitionResult,
    summarize_levels,
)


def _record(name, intra, inter, parallelism=DATA, index=0):
    return LayerCommunication(
        layer_index=index,
        layer_name=name,
        parallelism=parallelism,
        intra_bytes=intra,
        inter_bytes=inter,
    )


def _level(level, per_pair, num_layers=2):
    assignment = LayerAssignment.uniform(DATA, num_layers)
    breakdown = tuple(
        _record(f"layer{i}", per_pair / num_layers, 0.0, index=i) for i in range(num_layers)
    )
    return LevelResult(
        level=level,
        assignment=assignment,
        communication_bytes=per_pair,
        num_pairs=1 << level,
        breakdown=breakdown,
    )


class TestLayerCommunication:
    def test_total_is_intra_plus_inter(self):
        record = _record("conv", 100.0, 50.0)
        assert record.total_bytes == 150.0


class TestPartitionResult:
    def test_num_layers(self):
        assignment = LayerAssignment.of(["dp", "mp"])
        result = PartitionResult(
            assignment=assignment,
            communication_bytes=10.0,
            breakdown=(_record("a", 5, 0), _record("b", 5, 0, MODEL, 1)),
        )
        assert result.num_layers == 2

    def test_str_mentions_gb(self):
        result = PartitionResult(
            assignment=LayerAssignment.of(["dp"]),
            communication_bytes=2e9,
            breakdown=(_record("a", 2e9, 0),),
        )
        assert "2.000 GB" in str(result)


class TestLevelResult:
    def test_total_scales_with_pairs(self):
        level = _level(3, per_pair=100.0)
        assert level.num_pairs == 8
        assert level.total_bytes == 800.0


class TestHierarchicalResult:
    def _result(self):
        levels = (_level(0, 100.0), _level(1, 50.0))
        assignment = HierarchicalAssignment(tuple(level.assignment for level in levels))
        return HierarchicalResult(
            model_name="toy",
            batch_size=32,
            assignment=assignment,
            levels=levels,
        )

    def test_counts(self):
        result = self._result()
        assert result.num_levels == 2
        assert result.num_accelerators == 4

    def test_total_communication(self):
        # level 0: 100 * 1 pair, level 1: 50 * 2 pairs.
        assert self._result().total_communication_bytes == 200.0

    def test_level_bytes(self):
        assert self._result().level_bytes() == [100.0, 100.0]

    def test_mismatched_levels_rejected(self):
        levels = (_level(0, 100.0),)
        assignment = HierarchicalAssignment.uniform(DATA, 2, 2)
        with pytest.raises(ValueError):
            HierarchicalResult(
                model_name="bad", batch_size=32, assignment=assignment, levels=levels
            )

    def test_describe_contains_model_name(self):
        assert "toy" in self._result().describe()


class TestSummarizeLevels:
    def test_totals_in_gb(self):
        levels = [_level(0, 1e9), _level(1, 1e9)]
        summary = summarize_levels(levels)
        assert summary["per_level_gb"] == pytest.approx([1.0, 2.0])
        assert summary["total_gb"] == pytest.approx(3.0)
