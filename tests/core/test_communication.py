"""Tests for the communication model (Tables 1 and 2, Section 3)."""

import pytest

from repro.core.communication import PAIR_FACTOR, CommunicationModel
from repro.core.parallelism import DATA, MODEL, LayerAssignment
from repro.core.tensors import layer_tensors, model_tensors
from repro.nn.layers import ConvLayer, FCLayer
from repro.nn.model import build_model


@pytest.fixture(scope="module")
def fc_tensors():
    """Section 3.1 example: B=32, fully-connected 70 -> 100."""
    model = build_model("fc", (1, 1, 70), [FCLayer(name="fc", out_features=100)])
    return layer_tensors(model[0], batch_size=32)


@pytest.fixture(scope="module")
def conv_tensors():
    """Section 3.4 example: B=32, conv 12x12x20 -> 8x8x50 with 5x5 kernels."""
    model = build_model(
        "conv", (12, 12, 20), [ConvLayer(name="conv", out_channels=50, kernel_size=5)]
    )
    return layer_tensors(model[0], batch_size=32)


class TestIntraLayerCommunication:
    """Table 1: dp communicates A(dW_l), mp communicates A(F_{l+1})."""

    def test_dp_amount_is_gradient(self, fc_tensors):
        amount = CommunicationModel.intra_layer_elements(fc_tensors, DATA)
        assert amount == fc_tensors.gradient == 70 * 100

    def test_mp_amount_is_output_feature_map(self, fc_tensors):
        amount = CommunicationModel.intra_layer_elements(fc_tensors, MODEL)
        assert amount == fc_tensors.feature_out == 32 * 100

    def test_paper_fc_example_bytes(self, fc_tensors):
        """Section 3.4: dp = 56 KB (= 2 x 70 x 100 x 4 B), mp = 25.6 KB."""
        model = CommunicationModel()
        assert model.intra_layer_bytes(fc_tensors, DATA) == pytest.approx(56_000)
        assert model.intra_layer_bytes(fc_tensors, MODEL) == pytest.approx(25_600)

    def test_paper_conv_example_bytes(self, conv_tensors):
        """Section 3.4: dp = 200 KB, mp = 819 KB for the convolutional example."""
        model = CommunicationModel()
        assert model.intra_layer_bytes(conv_tensors, DATA) == pytest.approx(200_000)
        assert model.intra_layer_bytes(conv_tensors, MODEL) == pytest.approx(819_200)

    def test_fc_layer_prefers_model_parallelism(self, fc_tensors):
        """For the FC example model parallelism beats data parallelism (Section 3.4)."""
        model = CommunicationModel()
        assert model.intra_layer_bytes(fc_tensors, MODEL) < model.intra_layer_bytes(
            fc_tensors, DATA
        )

    def test_conv_layer_prefers_data_parallelism(self, conv_tensors):
        """For the conv example data parallelism beats model parallelism (Section 3.4)."""
        model = CommunicationModel()
        assert model.intra_layer_bytes(conv_tensors, DATA) < model.intra_layer_bytes(
            conv_tensors, MODEL
        )


class TestInterLayerCommunication:
    """Table 2: dp-dp 0, dp-mp 0.25A(F)+0.25A(E), mp-mp / mp-dp 0.5A(E)."""

    def test_dp_dp_is_free(self, fc_tensors):
        assert CommunicationModel.inter_layer_elements(DATA, DATA, fc_tensors) == 0.0

    def test_dp_mp_is_quarter_of_feature_and_error(self, fc_tensors):
        amount = CommunicationModel.inter_layer_elements(DATA, MODEL, fc_tensors)
        expected = 0.25 * fc_tensors.feature_out + 0.25 * fc_tensors.error_out
        assert amount == expected

    def test_mp_mp_is_half_of_error(self, fc_tensors):
        amount = CommunicationModel.inter_layer_elements(MODEL, MODEL, fc_tensors)
        assert amount == 0.5 * fc_tensors.error_out

    def test_mp_dp_is_half_of_error(self, fc_tensors):
        amount = CommunicationModel.inter_layer_elements(MODEL, DATA, fc_tensors)
        assert amount == 0.5 * fc_tensors.error_out

    def test_mp_transitions_have_equal_cost(self, conv_tensors):
        assert CommunicationModel.inter_layer_elements(
            MODEL, MODEL, conv_tensors
        ) == CommunicationModel.inter_layer_elements(MODEL, DATA, conv_tensors)

    def test_forward_backward_split_sums_to_total(self, fc_tensors):
        for previous in (DATA, MODEL):
            for current in (DATA, MODEL):
                forward = CommunicationModel.inter_layer_forward_elements(
                    previous, current, fc_tensors
                )
                backward = CommunicationModel.inter_layer_backward_elements(
                    previous, current, fc_tensors
                )
                total = CommunicationModel.inter_layer_elements(previous, current, fc_tensors)
                assert forward + backward == pytest.approx(total)

    def test_forward_share_only_for_dp_to_mp(self, fc_tensors):
        assert CommunicationModel.inter_layer_forward_elements(DATA, MODEL, fc_tensors) > 0
        assert CommunicationModel.inter_layer_forward_elements(DATA, DATA, fc_tensors) == 0
        assert CommunicationModel.inter_layer_forward_elements(MODEL, MODEL, fc_tensors) == 0
        assert CommunicationModel.inter_layer_forward_elements(MODEL, DATA, fc_tensors) == 0


class TestCommunicationModelConfiguration:
    def test_pair_factor_default(self):
        assert CommunicationModel().pair_factor == PAIR_FACTOR == 2

    def test_bytes_scale_with_pair_factor(self, fc_tensors):
        single = CommunicationModel(pair_factor=1)
        double = CommunicationModel(pair_factor=2)
        assert double.intra_layer_bytes(fc_tensors, DATA) == 2 * single.intra_layer_bytes(
            fc_tensors, DATA
        )

    def test_bytes_scale_with_precision(self, fc_tensors):
        fp32 = CommunicationModel(bytes_per_element=4)
        fp16 = CommunicationModel(bytes_per_element=2)
        assert fp32.intra_layer_bytes(fc_tensors, MODEL) == 2 * fp16.intra_layer_bytes(
            fc_tensors, MODEL
        )

    def test_rejects_invalid_configuration(self):
        with pytest.raises(ValueError):
            CommunicationModel(bytes_per_element=0)
        with pytest.raises(ValueError):
            CommunicationModel(pair_factor=0)


class TestLayerBreakdown:
    @pytest.fixture(scope="class")
    def two_layer_tensors(self):
        model = build_model(
            "two",
            (12, 12, 20),
            [
                ConvLayer(name="conv", out_channels=50, kernel_size=5),
                FCLayer(name="fc", out_features=10),
            ],
        )
        return model_tensors(model, 32)

    def test_breakdown_covers_every_layer(self, two_layer_tensors):
        model = CommunicationModel()
        assignment = LayerAssignment.of(["dp", "mp"])
        breakdown = model.layer_breakdown(two_layer_tensors, assignment)
        assert [record.layer_name for record in breakdown] == ["conv", "fc"]
        assert [record.parallelism for record in breakdown] == [DATA, MODEL]

    def test_first_layer_has_no_inter_communication(self, two_layer_tensors):
        model = CommunicationModel()
        breakdown = model.layer_breakdown(
            two_layer_tensors, LayerAssignment.of(["mp", "mp"])
        )
        assert breakdown[0].inter_bytes == 0.0
        assert breakdown[1].inter_bytes > 0.0

    def test_total_bytes_equals_breakdown_sum(self, two_layer_tensors):
        model = CommunicationModel()
        assignment = LayerAssignment.of(["dp", "mp"])
        breakdown = model.layer_breakdown(two_layer_tensors, assignment)
        assert model.total_bytes(two_layer_tensors, assignment) == pytest.approx(
            sum(record.total_bytes for record in breakdown)
        )

    def test_all_dp_total_is_sum_of_gradients(self, two_layer_tensors):
        model = CommunicationModel()
        assignment = LayerAssignment.of(["dp", "dp"])
        expected = sum(t.gradient for t in two_layer_tensors) * 4 * 2
        assert model.total_bytes(two_layer_tensors, assignment) == pytest.approx(expected)

    def test_layer_count_mismatch_rejected(self, two_layer_tensors):
        model = CommunicationModel()
        with pytest.raises(ValueError):
            model.layer_breakdown(two_layer_tensors, LayerAssignment.of(["dp"]))

    def test_record_total_is_intra_plus_inter(self, two_layer_tensors):
        model = CommunicationModel()
        breakdown = model.layer_breakdown(
            two_layer_tensors, LayerAssignment.of(["dp", "mp"])
        )
        for record in breakdown:
            assert record.total_bytes == pytest.approx(record.intra_bytes + record.inter_bytes)


class TestTrickAnalysisAmounts:
    """The Section 6.5.2 worked numbers for conv5 and fc3 of VGG-E."""

    def test_conv5_amounts_at_batch_32(self, vgg_a_model):
        from repro.nn.model_zoo import vgg_e

        model = vgg_e()
        conv5 = model.layer_by_name("conv5_4")
        tensors = layer_tensors(conv5, batch_size=32)
        assert tensors.gradient == 2_359_296  # 512 * 512 * 3^2
        assert tensors.feature_out == 3_211_264  # 32 * 512 * 14 * 14
        # The gradient is smaller, so conv5 should prefer model parallelism
        # at this batch size -- the opposite of what the trick picks.
        assert tensors.gradient < tensors.feature_out

    def test_fc3_amounts_at_batch_4096(self):
        from repro.nn.model_zoo import vgg_e

        fc3 = vgg_e().layer_by_name("fc3")
        tensors = layer_tensors(fc3, batch_size=4096)
        assert tensors.gradient == 4096 * 1000
        assert tensors.feature_out == 4096 * 1000
        # Intra-layer amounts tie; the inter-layer term must break the tie.
        assert tensors.gradient == tensors.feature_out
