"""Tests for per-layer tensor accounting and hierarchical scaling."""

import pytest

from repro.core.parallelism import DATA, MODEL, LayerAssignment
from repro.core.tensors import (
    BYTES_PER_ELEMENT,
    ScalingMode,
    TensorScale,
    descend_scales,
    elements_to_bytes,
    initial_scales,
    layer_tensors,
    model_tensors,
)
from repro.nn.layers import ConvLayer, FCLayer
from repro.nn.model import build_model


@pytest.fixture(scope="module")
def fc_model():
    """The paper's Section 3.1 example: a 70 -> 100 fully-connected layer."""
    return build_model("fc-example", (1, 1, 70), [FCLayer(name="fc", out_features=100)])


@pytest.fixture(scope="module")
def conv_model():
    """The paper's Section 3.4 example: 12x12x20 -> conv 5x5x20x50 -> 8x8x50."""
    return build_model(
        "conv-example", (12, 12, 20), [ConvLayer(name="conv", out_channels=50, kernel_size=5)]
    )


class TestLayerTensors:
    def test_fc_example_amounts(self, fc_model):
        tensors = layer_tensors(fc_model[0], batch_size=32)
        assert tensors.feature_in == 32 * 70
        assert tensors.feature_out == 32 * 100
        assert tensors.weight == 70 * 100

    def test_conv_example_amounts(self, conv_model):
        tensors = layer_tensors(conv_model[0], batch_size=32)
        assert tensors.weight == 5 * 5 * 20 * 50
        assert tensors.feature_out == 32 * 8 * 8 * 50

    def test_error_amounts_mirror_features(self, fc_model):
        tensors = layer_tensors(fc_model[0], batch_size=16)
        assert tensors.error_in == tensors.feature_in
        assert tensors.error_out == tensors.feature_out
        assert tensors.gradient == tensors.weight

    def test_macs_scale_with_batch(self, conv_model):
        small = layer_tensors(conv_model[0], batch_size=8)
        large = layer_tensors(conv_model[0], batch_size=32)
        assert large.macs == pytest.approx(4 * small.macs)

    def test_rejects_non_positive_batch(self, fc_model):
        with pytest.raises(ValueError):
            layer_tensors(fc_model[0], batch_size=0)

    def test_layer_metadata_carried(self, conv_model):
        tensors = layer_tensors(conv_model[0], batch_size=4)
        assert tensors.layer_name == "conv"
        assert tensors.layer_index == 0
        assert tensors.is_conv


class TestTensorScale:
    def test_default_is_unscaled(self):
        scale = TensorScale()
        assert scale.batch_fraction == 1.0
        assert scale.weight_fraction == 1.0

    def test_rejects_out_of_range_fractions(self):
        with pytest.raises(ValueError):
            TensorScale(batch_fraction=0.0)
        with pytest.raises(ValueError):
            TensorScale(weight_fraction=1.5)

    def test_descend_data_parallel_halves_batch(self):
        child = TensorScale().descend(DATA, ScalingMode.PARALLELISM_AWARE)
        assert child.batch_fraction == 0.5
        assert child.weight_fraction == 1.0

    def test_descend_model_parallel_halves_weights(self):
        child = TensorScale().descend(MODEL, ScalingMode.PARALLELISM_AWARE)
        assert child.batch_fraction == 1.0
        assert child.weight_fraction == 0.5

    def test_descend_none_mode_is_identity(self):
        scale = TensorScale(0.5, 0.25)
        assert scale.descend(DATA, ScalingMode.NONE) == scale
        assert scale.descend(MODEL, ScalingMode.NONE) == scale

    def test_descend_uniform_mode_halves_regardless_of_choice(self):
        dp_child = TensorScale().descend(DATA, ScalingMode.UNIFORM)
        mp_child = TensorScale().descend(MODEL, ScalingMode.UNIFORM)
        assert dp_child == mp_child
        assert dp_child.batch_fraction == 0.5

    def test_descend_uniform_mode_keeps_the_kernel_whole(self):
        """The documented uniform rule: only the batch fraction halves.

        Feature maps, errors and MACs are batch-proportional and halve at
        every level; the kernel (and therefore the gradient) stays whole
        no matter which parallelism was chosen.
        """
        scale = TensorScale()
        for choice in (DATA, MODEL):
            for level in range(3):
                child = scale.descend(choice, ScalingMode.UNIFORM)
                assert child.batch_fraction == scale.batch_fraction * 0.5
                assert child.weight_fraction == scale.weight_fraction == 1.0
                scale = child
            scale = TensorScale()

    def test_uniform_mode_amounts_halve_features_not_weights(self, fc_model):
        full = layer_tensors(fc_model[0], 32)
        child_scale = TensorScale().descend(DATA, ScalingMode.UNIFORM)
        child = layer_tensors(fc_model[0], 32, child_scale)
        assert child.feature_in == full.feature_in / 2
        assert child.feature_out == full.feature_out / 2
        assert child.macs == full.macs / 2
        assert child.weight == full.weight
        assert child.gradient == full.gradient

    def test_scaled_amounts_affect_features_and_weights(self, fc_model):
        full = layer_tensors(fc_model[0], 32)
        dp_half = layer_tensors(fc_model[0], 32, TensorScale(batch_fraction=0.5))
        mp_half = layer_tensors(fc_model[0], 32, TensorScale(weight_fraction=0.5))
        assert dp_half.feature_in == full.feature_in / 2
        assert dp_half.weight == full.weight
        assert mp_half.weight == full.weight / 2
        assert mp_half.feature_out == full.feature_out / 2
        assert mp_half.feature_in == full.feature_in


class TestScalingMode:
    def test_parse_accepts_enum(self):
        assert ScalingMode.parse(ScalingMode.NONE) is ScalingMode.NONE

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("parallelism-aware", ScalingMode.PARALLELISM_AWARE),
            ("parallelism_aware", ScalingMode.PARALLELISM_AWARE),
            ("UNIFORM", ScalingMode.UNIFORM),
            ("none", ScalingMode.NONE),
        ],
    )
    def test_parse_strings(self, text, expected):
        assert ScalingMode.parse(text) is expected

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            ScalingMode.parse("quadratic")


class TestModelTensorsAndScales:
    def test_model_tensors_covers_every_layer(self, lenet_model):
        tensors = model_tensors(lenet_model, 256)
        assert len(tensors) == len(lenet_model)
        assert [t.layer_index for t in tensors] == list(range(len(lenet_model)))

    def test_model_tensors_with_scales_length_mismatch(self, lenet_model):
        with pytest.raises(ValueError):
            model_tensors(lenet_model, 256, [TensorScale()])

    def test_initial_scales(self):
        scales = initial_scales(3)
        assert len(scales) == 3
        assert all(scale == TensorScale() for scale in scales)

    def test_initial_scales_rejects_non_positive(self):
        with pytest.raises(ValueError):
            initial_scales(0)

    def test_descend_scales_applies_per_layer_choice(self):
        scales = initial_scales(2)
        assignment = LayerAssignment.of(["dp", "mp"])
        children = descend_scales(scales, assignment)
        assert children[0].batch_fraction == 0.5 and children[0].weight_fraction == 1.0
        assert children[1].batch_fraction == 1.0 and children[1].weight_fraction == 0.5

    def test_descend_scales_length_mismatch(self):
        with pytest.raises(ValueError):
            descend_scales(initial_scales(3), LayerAssignment.of(["dp", "mp"]))

    def test_repeated_descent_compounds(self):
        scales = initial_scales(1)
        assignment = LayerAssignment.of(["dp"])
        for _ in range(3):
            scales = descend_scales(scales, assignment)
        assert scales[0].batch_fraction == pytest.approx(0.125)


class TestElementsToBytes:
    def test_default_precision_is_fp32(self):
        assert BYTES_PER_ELEMENT == 4
        assert elements_to_bytes(10) == 40

    def test_custom_precision(self):
        assert elements_to_bytes(10, bytes_per_element=2) == 20

    def test_rejects_non_positive_precision(self):
        with pytest.raises(ValueError):
            elements_to_bytes(10, bytes_per_element=0)
