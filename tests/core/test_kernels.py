"""The kernel backend registry: validation, fallback warning, counters.

The numerical behaviour of the kernels themselves is pinned by the
property suites (``tests/properties/test_property_fastpaths.py`` and
``test_property_compiled_dag.py``); this module covers the plumbing
around them -- backend name validation and its error message, the
once-per-process numba-fallback warning, the active/parallel predicates
and the dispatch counters the acceptance tests rely on.
"""

import warnings

import pytest

from repro.core import kernels
from repro.core.costs import CostTable
from repro.nn.model_zoo import lenet_c


@pytest.fixture(autouse=True)
def _restore_backend_state():
    """Leave the process-global backend registry the way we found it."""
    default = kernels.get_default_backend()
    warned = kernels._fallback_warned
    yield
    kernels.set_default_backend(default)
    kernels._fallback_warned = warned


class TestValidateBackend:
    def test_known_backends_round_trip(self):
        for backend in kernels.VALID_BACKENDS:
            assert kernels.validate_backend(backend) == backend

    def test_none_is_passed_through(self):
        assert kernels.validate_backend(None) is None

    def test_unknown_backend_names_the_valid_set_and_active_default(self):
        kernels.set_default_backend("numpy")
        with pytest.raises(ValueError) as excinfo:
            kernels.validate_backend("cuda")
        message = str(excinfo.value)
        assert "'cuda'" in message
        assert "'numpy'" in message  # the active default
        for backend in kernels.VALID_BACKENDS:
            assert backend in message

    def test_error_reports_a_non_default_active_backend(self):
        kernels.set_default_backend("compiled-parallel")
        with pytest.raises(ValueError, match="compiled-parallel"):
            kernels.validate_backend("fast")


class TestDefaultBackend:
    def test_set_and_resolve_round_trip(self):
        for backend in kernels.VALID_BACKENDS:
            kernels.set_default_backend(backend)
            assert kernels.get_default_backend() == backend
            assert kernels.resolve_backend(None) == backend
            assert kernels.resolve_backend("numpy") == "numpy"

    def test_set_default_rejects_unknown_names(self):
        with pytest.raises(ValueError):
            kernels.set_default_backend("gpu")


class TestActivePredicates:
    def test_numpy_backend_never_activates_kernels(self):
        assert not kernels.compiled_active("numpy")
        assert not kernels.parallel_active("numpy")

    def test_compiled_backends_follow_numba_availability(self):
        for backend in kernels.COMPILED_BACKENDS:
            assert kernels.compiled_active(backend) == kernels.NUMBA_AVAILABLE
        assert kernels.parallel_active("compiled") is False
        assert (
            kernels.parallel_active("compiled-parallel") == kernels.NUMBA_AVAILABLE
        )

    def test_predicates_resolve_the_process_default(self):
        kernels.set_default_backend("compiled")
        assert kernels.compiled_active(None) == kernels.NUMBA_AVAILABLE


class TestFallbackWarning:
    def test_warns_exactly_once_per_process(self, monkeypatch):
        monkeypatch.setattr(kernels, "NUMBA_AVAILABLE", False)
        monkeypatch.setattr(kernels, "_fallback_warned", False)
        with pytest.warns(RuntimeWarning, match="numba is not installed"):
            kernels.warn_numba_fallback("compiled")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            kernels.warn_numba_fallback("compiled")
            kernels.warn_numba_fallback("compiled-parallel")

    def test_numpy_backend_never_warns(self, monkeypatch):
        monkeypatch.setattr(kernels, "NUMBA_AVAILABLE", False)
        monkeypatch.setattr(kernels, "_fallback_warned", False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            kernels.warn_numba_fallback("numpy")

    def test_no_warning_when_numba_is_present(self, monkeypatch):
        monkeypatch.setattr(kernels, "NUMBA_AVAILABLE", True)
        monkeypatch.setattr(kernels, "_fallback_warned", False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            kernels.warn_numba_fallback("compiled")

    def test_compiled_cost_table_triggers_the_warning_path(self, monkeypatch):
        """CostTable construction routes through warn_numba_fallback."""
        monkeypatch.setattr(kernels, "NUMBA_AVAILABLE", False)
        monkeypatch.setattr(kernels, "_fallback_warned", False)
        with pytest.warns(RuntimeWarning, match="NumPy path"):
            CostTable.compile(lenet_c(), 64, backend="compiled")


class TestDispatchCounters:
    def test_reset_zeroes_every_counter(self):
        kernels.reset_dispatch_counts()
        counts = kernels.dispatch_counts()
        assert set(counts) == {
            "chain_dp",
            "chain_score",
            "dag_block",
            "dag_score",
            "hier_level",
        }
        assert all(value == 0 for value in counts.values())

    def test_counts_are_a_snapshot_not_a_live_view(self):
        kernels.reset_dispatch_counts()
        snapshot = kernels.dispatch_counts()
        snapshot["chain_dp"] = 99
        assert kernels.dispatch_counts()["chain_dp"] == 0
