"""The pluggable cost-model layer: specs, validation, fitting, identity.

Covers the provider protocol itself (``canonical_cost_model`` /
``resolve_cost_model``), the ``hypar-profile/v1`` validator and the
outlier-filtered fit, the provider-aware cache identity that keeps
profiled tables from ever colliding with analytic ones, the bit-exactness
contract between a calibrated vectorized table and the object oracle, and
the end-to-end acceptance scenario: a shipped pack flips the chosen
partition on Lenet-c.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.accelerator.array import ArrayConfig
from repro.analysis.experiments import ExperimentRunner
from repro.core.communication import CalibratedCommunicationModel, CommunicationModel
from repro.core.costmodel import (
    ANALYTIC_SPEC,
    PROFILE_SCHEMA,
    AnalyticCostModel,
    ProfiledCostModel,
    canonical_cost_model,
    resolve_cost_model,
    shipped_profiles,
    tukey_filtered,
    validate_profile_payload,
)
from repro.core.costs import CostTable, LayerAssignment, TableCache, table_cache_key
from repro.core.tensors import model_tensors
from repro.nn.model_zoo import lenet_c
from repro.resilience.replan import ReplanConfig

SHIPPED_PACKS = ["congested-fabric", "fp16-precision", "hetero-accelerators",
                 "slow-interconnect"]


def valid_payload(**overrides) -> dict:
    """A minimal valid hypar-profile/v1 document."""
    payload = {
        "schema": PROFILE_SCHEMA,
        "name": "unit-test",
        "description": "synthetic",
        "precision_bytes": 4,
        "reference_bandwidth": 1.0e9,
        "links": {
            "intra": {"bandwidth": [1.0e9, 1.0e9, 1.0e9], "latency": [0.0, 0.0, 0.0]},
            "inter": {"bandwidth": [5.0e8, 5.0e8, 5.0e8], "latency": [1e-6, 1e-6, 1e-6]},
        },
        "layers": {},
    }
    payload.update(overrides)
    return payload


class TestSpecStrings:
    def test_none_and_empty_mean_analytic(self):
        assert canonical_cost_model(None) == ANALYTIC_SPEC
        assert canonical_cost_model("") == ANALYTIC_SPEC
        assert canonical_cost_model("  analytic  ") == ANALYTIC_SPEC

    def test_profiled_specs_keep_their_target(self):
        assert canonical_cost_model("profiled:foo") == "profiled:foo"
        assert canonical_cost_model(" profiled:foo ") == "profiled:foo"

    def test_garbage_specs_are_rejected(self):
        with pytest.raises(ValueError, match="analytic"):
            canonical_cost_model("empirical")
        with pytest.raises(ValueError, match="profiled"):
            canonical_cost_model("profiled:")


class TestResolve:
    def test_analytic_resolves_to_the_plain_model(self):
        model = resolve_cost_model("analytic")
        assert isinstance(model, AnalyticCostModel)
        comm = model.communication_model()
        assert type(comm) is CommunicationModel
        assert comm.same_costs(CommunicationModel())

    def test_shipped_packs_are_discoverable_and_resolvable(self):
        assert sorted(shipped_profiles()) == SHIPPED_PACKS
        for pack in SHIPPED_PACKS:
            model = resolve_cost_model(f"profiled:{pack}")
            assert isinstance(model, ProfiledCostModel)
            assert model.spec == f"profiled:{pack}"

    def test_shipped_packs_fit_once_per_process(self):
        first = resolve_cost_model("profiled:slow-interconnect")
        again = resolve_cost_model("profiled:slow-interconnect")
        assert first is again

    def test_file_paths_resolve_without_entering_the_shared_cache(self, tmp_path):
        path = tmp_path / "pack.json"
        path.write_text(json.dumps(valid_payload()))
        first = resolve_cost_model(f"profiled:{path}")
        again = resolve_cost_model(f"profiled:{path}")
        assert isinstance(first, ProfiledCostModel)
        assert first is not again

    def test_unknown_pack_error_names_the_shipped_packs(self):
        with pytest.raises(ValueError, match="slow-interconnect"):
            resolve_cost_model("profiled:no-such-pack")

    def test_cost_model_instances_pass_through(self):
        model = AnalyticCostModel()
        assert resolve_cost_model(model) is model


class TestProfileValidation:
    def test_valid_payload_has_no_errors(self):
        assert validate_profile_payload(valid_payload()) == []

    def test_every_shipped_pack_validates(self):
        for path in shipped_profiles().values():
            with open(path, encoding="utf-8") as handle:
                assert validate_profile_payload(json.load(handle)) == []

    def test_non_object_payload(self):
        assert validate_profile_payload([1, 2, 3]) == ["profile must be a JSON object"]

    @pytest.mark.parametrize(
        ("overrides", "fragment"),
        [
            ({"schema": "hypar-profile/v0"}, "schema must be"),
            ({"name": ""}, "name must be a non-empty string"),
            ({"precision_bytes": 0}, "precision_bytes"),
            ({"precision_bytes": True}, "precision_bytes"),
            ({"reference_bandwidth": -1.0}, "reference_bandwidth"),
            ({"links": None}, "links must be an object"),
            ({"layers": {"conv1": {"time_ms": [1.0, 1.0]}}}, "at least 3 samples"),
            ({"layers": {"conv1": {"time_ms": [1.0, 1.0, 0.0]}}}, "must be > 0.0"),
        ],
    )
    def test_violations_are_reported(self, overrides, fragment):
        errors = validate_profile_payload(valid_payload(**overrides))
        assert any(fragment in error for error in errors), errors

    def test_short_bandwidth_list_is_reported_with_its_path(self):
        payload = valid_payload()
        payload["links"]["inter"]["bandwidth"] = [1.0e9]
        errors = validate_profile_payload(payload)
        assert any("links.inter.bandwidth" in error for error in errors)

    def test_invalid_payload_raises_with_every_error_listed(self):
        payload = valid_payload(name="", precision_bytes=0)
        with pytest.raises(ValueError) as excinfo:
            ProfiledCostModel(payload)
        message = str(excinfo.value)
        assert "name must be" in message
        assert "precision_bytes" in message

    def test_load_of_missing_file_raises_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            ProfiledCostModel.load(str(tmp_path / "absent.json"))


class TestFitting:
    def test_tukey_drops_outliers_but_passes_small_samples_through(self):
        assert tukey_filtered([1.0, 1.0, 1.1, 0.9, 50.0]) == [0.9, 1.0, 1.0, 1.1]
        assert tukey_filtered([1.0, 50.0, 2.0]) == [1.0, 2.0, 50.0]

    def test_slow_interconnect_fit_matches_the_designed_values(self):
        report = resolve_cost_model("profiled:slow-interconnect").fit_report()
        assert report["intra_scale"] == pytest.approx(1.0)
        assert report["inter_scale"] == pytest.approx(16.0)
        assert report["inter_latency_bytes"] == pytest.approx(2000.0)
        assert report["layer_scales"] == {}
        # The synthetic samples include one outlier per quantity; the fit
        # reports it dropped.
        assert report["samples"]["inter_bandwidth"]["kept"] == 4
        assert report["samples"]["inter_bandwidth"]["total"] == 5

    def test_hetero_pack_fits_per_layer_scales(self):
        report = resolve_cost_model("profiled:hetero-accelerators").fit_report()
        assert report["layer_scales"] == pytest.approx(
            {"conv1": 0.4, "conv2": 0.4, "fc1": 1.6, "fc2": 1.6}
        )

    def test_fp16_pack_halves_the_element_width(self):
        comm = resolve_cost_model("profiled:fp16-precision").communication_model()
        assert comm.bytes_per_element == 2

    def test_residuals_are_zero_for_repeatable_and_grow_with_spread(self):
        tight = ProfiledCostModel(valid_payload()).fit_report()
        assert all(value == 0.0 for value in tight["residuals"].values())
        noisy = valid_payload()
        noisy["links"]["inter"]["bandwidth"] = [4.0e8, 5.0e8, 6.0e8]
        spread = ProfiledCostModel(noisy).fit_report()
        assert spread["residuals"]["inter_bandwidth"] > 0.0


class TestProviderIdentity:
    """The satellite bugfix: ``same_costs``/``cache_key`` know the provider."""

    def test_analytic_and_calibrated_never_share_costs(self):
        analytic = CommunicationModel()
        calibrated = CalibratedCommunicationModel("pack")
        # Identical bytes_per_element / pair_factor, yet different provider.
        assert analytic.bytes_per_element == calibrated.bytes_per_element
        assert not analytic.same_costs(calibrated)
        assert not calibrated.same_costs(analytic)
        assert analytic.cache_key != calibrated.cache_key

    def test_distinct_calibrations_have_distinct_identity(self):
        base = CalibratedCommunicationModel("pack", inter_scale=2.0)
        assert not base.same_costs(CalibratedCommunicationModel("pack", inter_scale=4.0))
        assert not base.same_costs(CalibratedCommunicationModel("other", inter_scale=2.0))
        assert base.same_costs(CalibratedCommunicationModel("pack", inter_scale=2.0))

    def test_compiled_table_rejects_a_foreign_provider(self):
        table = TableCache().get_or_compile(lenet_c(), 64, 2)
        with pytest.raises(ValueError):
            table.check_compatible(
                table.model,
                table.batch_size,
                table.num_levels,
                table.scaling_mode,
                CalibratedCommunicationModel("pack"),
            )

    def test_table_cache_key_separates_providers(self):
        analytic_key = table_cache_key(lenet_c(), 64, 2)
        profiled_key = table_cache_key(
            lenet_c(),
            64,
            2,
            communication_model=resolve_cost_model(
                "profiled:slow-interconnect"
            ).communication_model(),
        )
        assert analytic_key != profiled_key


class TestTableCacheMixedProviders:
    """Satellite 3: hit/miss/eviction accounting under mixed keys."""

    def test_mixed_providers_miss_then_hit_separately(self):
        cache = TableCache()
        profiled = resolve_cost_model("profiled:slow-interconnect").communication_model()
        analytic_table = cache.get_or_compile(lenet_c(), 64, 2)
        profiled_table = cache.get_or_compile(
            lenet_c(), 64, 2, communication_model=profiled
        )
        assert analytic_table is not profiled_table
        assert cache.stats()["misses"] == 2
        # Repeats hit their own entry, never the other provider's.
        assert cache.get_or_compile(lenet_c(), 64, 2) is analytic_table
        assert (
            cache.get_or_compile(lenet_c(), 64, 2, communication_model=profiled)
            is profiled_table
        )
        assert cache.stats() == {
            "hits": 2, "misses": 2, "size": 2, "evictions": 0, "hit_rate": 0.5,
        }

    def test_equal_calibrations_share_one_entry(self):
        cache = TableCache()
        first = cache.get_or_compile(
            lenet_c(), 64, 2,
            communication_model=CalibratedCommunicationModel("pack", inter_scale=2.0),
        )
        again = cache.get_or_compile(
            lenet_c(), 64, 2,
            communication_model=CalibratedCommunicationModel("pack", inter_scale=2.0),
        )
        assert first is again
        assert cache.hits == 1

    def test_eviction_counts_mixed_entries(self):
        cache = TableCache(limit=2)
        profiled = resolve_cost_model("profiled:slow-interconnect").communication_model()
        cache.get_or_compile(lenet_c(), 64, 2)
        cache.get_or_compile(lenet_c(), 64, 2, communication_model=profiled)
        cache.get_or_compile(lenet_c(), 128, 2)  # over the limit: full flush
        assert cache.evictions == 2
        assert len(cache) == 1


class TestCalibratedExactness:
    """Vectorized tables under a calibrated model match the object oracle."""

    @pytest.mark.parametrize("pack", SHIPPED_PACKS)
    def test_table_matches_oracle_float_for_float(self, pack):
        comm = resolve_cost_model(f"profiled:{pack}").communication_model()
        tensors = model_tensors(lenet_c(), 64)
        table = CostTable.from_tensors(tensors, comm)
        for code in range(table.num_assignments):
            assignment = LayerAssignment.from_codes(code, len(tensors))
            assert table.total_bytes(assignment) == comm.total_bytes(
                tensors, assignment
            )

    def test_score_codes_matches_total_bytes_under_calibration(self):
        comm = resolve_cost_model("profiled:congested-fabric").communication_model()
        tensors = model_tensors(lenet_c(), 64)
        table = CostTable.from_tensors(tensors, comm)
        codes = np.arange(table.num_assignments)
        totals = table.score_codes(codes)
        for code in codes:
            assignment = LayerAssignment.from_codes(int(code), len(tensors))
            assert totals[code] == table.total_bytes(assignment)

    def test_latency_term_only_charges_nonzero_transfers(self):
        comm = CalibratedCommunicationModel("pack", inter_latency_bytes=1000.0)
        assert comm._calibrated_transfer_bytes(0.0) == 0.0
        assert comm._calibrated_transfer_bytes(1.0) == pytest.approx(
            1.0 * comm.bytes_per_element * comm.pair_factor + 1000.0
        )


class TestProfiledChangesTheDecision:
    """Acceptance: a shipped pack flips the chosen partition on Lenet-c."""

    @staticmethod
    def _assignments(cost_model: str) -> list[list[str]]:
        runner = ExperimentRunner(
            array=ArrayConfig(num_accelerators=4),
            batch_size=64,
            cost_model=cost_model,
        )
        result = runner.optimized_parallelism(lenet_c())
        return [
            [choice.short for choice in level.assignment] for level in result.levels
        ]

    def test_slow_interconnect_flips_lenet_fc_layers_to_data_parallel(self):
        analytic = self._assignments("analytic")
        profiled = self._assignments("profiled:slow-interconnect")
        # Analytic Table-1/2 puts Lenet-c's fully-connected layers on
        # model parallelism; a 16x slower inter-accelerator fabric makes
        # the dp->mp / mp->mp transitions so expensive that all-dp wins.
        assert analytic == [["dp", "dp", "mp", "mp"], ["dp", "dp", "mp", "mp"]]
        assert profiled == [["dp", "dp", "dp", "dp"], ["dp", "dp", "dp", "dp"]]
        assert analytic != profiled


class TestReplanConfigPayload:
    def test_analytic_payload_keeps_the_historical_shape(self):
        payload = ReplanConfig().to_payload()
        assert "cost_model" not in payload
        assert len(payload) == 7

    def test_profiled_payload_carries_the_spec(self):
        payload = ReplanConfig(cost_model="profiled:slow-interconnect").to_payload()
        assert payload["cost_model"] == "profiled:slow-interconnect"

    def test_bad_spec_is_rejected_at_construction(self):
        with pytest.raises(ValueError, match="cost model"):
            ReplanConfig(cost_model="empirical")
