"""Tests for the strategy registry and end-to-end pipeline parallelism."""

import numpy as np
import pytest

from repro.core.communication import CommunicationModel
from repro.core.exhaustive import enumerate_restricted_communication
from repro.core.hierarchical import HierarchicalPartitioner
from repro.core.parallelism import (
    DATA,
    DEFAULT_SPACE,
    MODEL,
    PIPELINE,
    HierarchicalAssignment,
    LayerAssignment,
    Parallelism,
    StrategySpace,
)
from repro.core.placement import TensorPlacement
from repro.core.strategies import (
    BATCH,
    NONE,
    WEIGHT,
    registered_strategies,
    strategy_spec,
)
from repro.core.tensors import LayerTensors, ScalingMode
from repro.nn.model_zoo import alexnet, all_models, lenet_c

PIPELINE_SPACE = StrategySpace.parse("dp,mp,pp")


def _tensors(feature_out=100.0, weight=1000.0):
    return LayerTensors(
        layer_index=0,
        layer_name="layer",
        is_conv=False,
        feature_in=50.0,
        feature_out=feature_out,
        weight=weight,
        macs=1.0,
    )


class TestRegistry:
    def test_all_members_registered(self):
        shorts = [spec.short for spec in registered_strategies()]
        assert shorts == ["dp", "mp", "pp"]

    def test_descent_behaviours(self):
        assert strategy_spec(DATA).halves == BATCH
        assert strategy_spec(MODEL).halves == WEIGHT
        assert strategy_spec(PIPELINE).halves == NONE
        assert strategy_spec(PIPELINE).stage_local

    def test_intra_phases(self):
        assert strategy_spec(DATA).intra_phase == "gradient"
        assert strategy_spec(MODEL).intra_phase == "forward"

    def test_unregistered_lookup_raises(self):
        with pytest.raises(KeyError):
            strategy_spec("not-a-parallelism")


class TestPipelineCostModel:
    """The documented pp cost table, spot-checked through the model."""

    def setup_method(self):
        self.comm = CommunicationModel()
        self.boundary = _tensors()

    def test_pipeline_has_no_intra_cost(self):
        assert self.comm.intra_layer_elements(self.boundary, PIPELINE) == 0.0

    @pytest.mark.parametrize(
        "previous,current,forward,backward",
        [
            (DATA, PIPELINE, 0.25, 0.25),
            (MODEL, PIPELINE, 0.0, 0.5),
            (PIPELINE, DATA, 0.25, 0.25),
            (PIPELINE, MODEL, 0.25, 0.25),
            (PIPELINE, PIPELINE, 0.5, 0.5),
        ],
    )
    def test_transition_table(self, previous, current, forward, backward):
        amount = self.boundary.feature_out
        assert self.comm.inter_layer_forward_elements(
            previous, current, self.boundary
        ) == forward * amount
        assert self.comm.inter_layer_backward_elements(
            previous, current, self.boundary
        ) == backward * amount

    def test_dp_mp_entries_unchanged(self):
        """The paper's Table 2 must be untouched by the registry refactor."""
        amount = self.boundary.feature_out
        assert self.comm.inter_layer_elements(DATA, DATA, self.boundary) == 0.0
        assert self.comm.inter_layer_elements(DATA, MODEL, self.boundary) == 0.5 * amount
        assert self.comm.inter_layer_elements(MODEL, MODEL, self.boundary) == 0.5 * amount
        assert self.comm.inter_layer_elements(MODEL, DATA, self.boundary) == 0.5 * amount


class TestDeprecatedBitShims:
    """The historical bit-encoding names must warn but stay bit-exact for K=2."""

    def test_cost_table_score_bits_equals_score_codes(self):
        from repro.core.costs import CostTable

        model = lenet_c()
        table = CostTable.compile(model, 64)
        codes = np.arange(table.num_assignments)
        with pytest.warns(DeprecationWarning, match="score_bits is deprecated"):
            via_bits = table.score_bits(codes)
        np.testing.assert_array_equal(via_bits, table.score_codes(codes))
        with pytest.warns(DeprecationWarning, match="result_for_bits is deprecated"):
            via_bits_result = table.result_for_bits(3)
        assert via_bits_result.communication_bytes == (
            table.result_for_codes(3).communication_bytes
        )

    def test_hierarchical_table_bit_shims(self):
        model = lenet_c()
        partitioner = HierarchicalPartitioner(num_levels=2)
        table = partitioner.compile_table(model, 64)
        codes = np.arange(1 << table.total_bits)
        with pytest.warns(DeprecationWarning, match="score_bits is deprecated"):
            via_bits = table.score_bits(codes)
        np.testing.assert_array_equal(via_bits, table.score_codes(codes))
        with pytest.warns(DeprecationWarning, match="bits_to_assignment is deprecated"):
            assignment = table.bits_to_assignment(37)
        with pytest.warns(DeprecationWarning, match="assignment_to_bits is deprecated"):
            assert table.assignment_to_bits(assignment) == 37
        assert table.codes_to_assignment(37) == assignment

    def test_layer_assignment_shims_match_codes_for_every_pattern(self):
        for bits in range(1 << 4):
            with pytest.warns(DeprecationWarning, match="from_bits is deprecated"):
                via_bits = LayerAssignment.from_bits(bits, 4)
            assert via_bits.choices == LayerAssignment.from_codes(bits, 4, DEFAULT_SPACE).choices


class TestPipelineSearch:
    def test_some_zoo_model_selects_a_mixed_assignment_with_pp(self):
        """Widening the axis to dp,mp,pp must pay off somewhere in the zoo."""
        mixed = False
        for model in all_models():
            partitioner = HierarchicalPartitioner(strategies=PIPELINE_SPACE)
            result = partitioner.partition(model, 256)
            used = {
                choice for level in result.assignment for choice in level
            }
            if PIPELINE in used and len(used) > 1:
                mixed = True
                break
        assert mixed

    def test_pipeline_search_never_worse_per_level(self):
        """A superset axis can only improve one level's DP optimum.

        (The *hierarchical* greedy of Algorithm 2 carries no such guarantee
        -- a cheaper level-1 choice changes the scale descent seen by the
        deeper levels -- but each level's dynamic program is exact, so at a
        fixed descent state widening the space is monotone.)
        """
        from repro.core.partitioner import TwoWayPartitioner
        from repro.core.tensors import model_tensors

        model = alexnet()
        tensors = model_tensors(model, 256)
        binary = TwoWayPartitioner().partition_tensors(tensors)
        widened = TwoWayPartitioner(strategies=PIPELINE_SPACE).partition_tensors(
            tensors
        )
        assert widened.communication_bytes <= binary.communication_bytes

    def test_restricted_sweep_over_pipeline_space_matches_evaluate(self):
        model = lenet_c()
        partitioner = HierarchicalPartitioner(
            num_levels=2, strategies=PIPELINE_SPACE
        )
        base = HierarchicalAssignment.uniform(DATA, 2, len(model))
        free = [(0, 0), (1, 2)]
        totals = enumerate_restricted_communication(
            model, 64, base, free, partitioner=partitioner
        )
        assert totals.shape == (9,)
        from repro.core.exhaustive import restricted_assignment

        for codes in range(9):
            assignment = restricted_assignment(base, free, codes, PIPELINE_SPACE)
            expected = partitioner.evaluate(model, assignment, 64)
            assert totals[codes] == expected.total_communication_bytes

    def test_binary_table_rejects_pipeline_assignments(self):
        model = lenet_c()
        partitioner = HierarchicalPartitioner(num_levels=2)
        assignment = HierarchicalAssignment.uniform(PIPELINE, 2, len(model))
        with pytest.raises(ValueError):
            partitioner.evaluate(model, assignment, 64)


class TestPipelinePlacement:
    def _assignment(self, model, choices_by_level):
        return HierarchicalAssignment.of(
            [[choices] * len(model) if isinstance(choices, str) else choices
             for choices in choices_by_level]
        )

    def test_stage_local_ownership_alternates(self):
        model = lenet_c()
        assignment = HierarchicalAssignment.of(
            [["pp"] * len(model), ["dp"] * len(model)]
        )
        placement = TensorPlacement(model, assignment)
        placement.validate()
        # The k-th pipeline layer at the level lives on group k % 2: layer 0
        # on the lower half (accelerators 0, 1), layer 1 on the upper half.
        assert placement.shard(0, 0).owned
        assert placement.shard(1, 0).owned
        assert not placement.shard(2, 0).owned
        assert not placement.shard(3, 0).owned
        assert not placement.shard(0, 1).owned
        assert placement.shard(2, 1).owned

    def test_pipeline_level_does_not_replicate_kernels(self):
        model = lenet_c()
        pp_assignment = HierarchicalAssignment.of([["pp"] * len(model)])
        dp_assignment = HierarchicalAssignment.of([["dp"] * len(model)])
        pp_placement = TensorPlacement(model, pp_assignment)
        dp_placement = TensorPlacement(model, dp_assignment)
        pp_placement.validate()
        for layer in model:
            assert pp_placement.weight_replication_factor(layer.index) == 1.0
            assert dp_placement.weight_replication_factor(layer.index) == 2.0

    def test_stage_owner_holds_the_whole_layer(self):
        model = lenet_c()
        assignment = HierarchicalAssignment.of([["pp"] * len(model)])
        placement = TensorPlacement(model, assignment)
        shard = placement.shard(0, 0)
        assert shard.owned
        assert shard.weight_fraction() == 1.0
        assert shard.feature_out_fraction() == 1.0
        other = placement.shard(1, 0)
        assert not other.owned
        assert other.weight_fraction() == 0.0
        assert other.feature_out_fraction() == 0.0

    def test_footprint_concentrates_on_owners(self):
        model = lenet_c()
        assignment = HierarchicalAssignment.of([["pp"] * len(model)])
        placement = TensorPlacement(model, assignment)
        footprints = placement.memory_footprint(batch_size=8)
        total = sum(f.total_bytes for f in footprints)
        assert total > 0
        # Layers alternate owners, so both accelerators hold something but
        # nothing is replicated: the array total equals one full copy.
        mono = TensorPlacement(
            model, HierarchicalAssignment.of([["dp"] * len(model)])
        )
        mono_weights = sum(f.weight_bytes for f in mono.memory_footprint(8))
        pp_weights = sum(f.weight_bytes for f in footprints)
        assert pp_weights == pytest.approx(mono_weights / 2.0)


class TestPipelineSimulation:
    def _simulate(self, num_microbatches=4):
        from repro.accelerator.array import ArrayConfig
        from repro.sim.training import TrainingSimulator

        model = lenet_c()
        array = ArrayConfig(num_accelerators=4)
        simulator = TrainingSimulator(
            array,
            strategies=PIPELINE_SPACE,
            num_microbatches=num_microbatches,
        )
        partitioner = HierarchicalPartitioner(
            num_levels=array.num_levels,
            communication_model=simulator.communication_model,
            strategies=PIPELINE_SPACE,
        )
        assignment = HierarchicalAssignment.of(
            [["dp", "pp", "mp", "pp", "dp", "pp"][: len(model)]] * array.num_levels
        )
        report = simulator.simulate(model, assignment, 64, "pp-mix")
        return model, partitioner, assignment, report

    def test_simulated_bytes_match_the_object_based_oracle(self):
        """Vectorized tables and the object oracle agree on pp step traffic."""
        model, partitioner, assignment, report = self._simulate()
        evaluated = partitioner.evaluate_reference(model, assignment, 64)
        assert report.communication_bytes == pytest.approx(
            evaluated.total_communication_bytes, rel=1e-12
        )

    def test_microbatching_only_helps(self):
        """More micro-batches can only hide more stage-transfer latency."""
        *_, unsplit = self._simulate(num_microbatches=1)
        *_, split = self._simulate(num_microbatches=8)
        assert split.step_seconds <= unsplit.step_seconds + 1e-12
        # The traffic itself is identical; only the overlap changes.
        assert split.communication_bytes == pytest.approx(
            unsplit.communication_bytes, rel=1e-12
        )

    def test_microbatch_count_is_irrelevant_without_pipeline_layers(self):
        from repro.accelerator.array import ArrayConfig
        from repro.sim.training import TrainingSimulator

        model = lenet_c()
        array = ArrayConfig(num_accelerators=4)
        assignment = HierarchicalAssignment.uniform(DATA, array.num_levels, len(model))
        reports = [
            TrainingSimulator(array, num_microbatches=m).simulate(
                model, assignment, 64, "dp"
            )
            for m in (1, 4, 16)
        ]
        assert len({r.step_seconds for r in reports}) == 1

    def test_invalid_microbatch_count_rejected(self):
        from repro.sim.training import TrainingSimulator

        with pytest.raises(ValueError):
            TrainingSimulator(num_microbatches=0)
