"""Tests for the vectorized cost-table evaluation engine."""

import numpy as np
import pytest

from repro.core.communication import CommunicationModel
from repro.core.costs import CostTable, HierarchicalCostTable, compile_cost_table
from repro.core.exhaustive import (
    enumerate_restricted,
    enumerate_restricted_communication,
    exhaustive_hierarchical,
    exhaustive_hierarchical_reference,
    exhaustive_two_way,
    exhaustive_two_way_reference,
    restricted_assignment,
)
from repro.core.hierarchical import HierarchicalPartitioner
from repro.core.parallelism import (
    DATA,
    MODEL,
    HierarchicalAssignment,
    LayerAssignment,
)
from repro.core.partitioner import TwoWayPartitioner
from repro.core.tensors import ScalingMode, model_tensors


class TestCostTableCompilation:
    def test_shapes(self, lenet_model):
        table = compile_cost_table(lenet_model, 256)
        layers = len(lenet_model)
        assert table.intra.shape == (layers, 2)
        assert table.inter.shape == (layers - 1, 2, 2)
        assert table.num_assignments == 1 << layers

    def test_entries_match_communication_model(self, lenet_model, communication_model):
        tensors = model_tensors(lenet_model, 256)
        table = CostTable.from_tensors(tensors, communication_model)
        for index, record in enumerate(tensors):
            assert table.intra[index, 0] == communication_model.intra_layer_bytes(record, DATA)
            assert table.intra[index, 1] == communication_model.intra_layer_bytes(record, MODEL)
        for index in range(len(tensors) - 1):
            for p_bit, previous in enumerate((DATA, MODEL)):
                for q_bit, current in enumerate((DATA, MODEL)):
                    assert table.inter[index, p_bit, q_bit] == (
                        communication_model.inter_layer_bytes(
                            previous, current, tensors[index]
                        )
                    )

    def test_rejects_empty_tensor_list(self):
        with pytest.raises(ValueError):
            CostTable.from_tensors([])

    def test_single_layer_table(self, tiny_model):
        table = compile_cost_table(tiny_model, 8)
        sub = CostTable.from_tensors(table.tensors[:1], table.communication_model)
        assert sub.inter.shape == (0, 2, 2)
        bits, total = sub.argmin_assignment()
        assert bits in (0, 1)
        assert total == min(sub.intra[0])


class TestCostTableScoring:
    def test_score_codes_matches_evaluate_exactly(self, lenet_model, two_way_partitioner):
        tensors = model_tensors(lenet_model, 256)
        table = two_way_partitioner.compile_table(tensors)
        bits = np.arange(table.num_assignments)
        totals = table.score_codes(bits)
        for pattern in bits:
            assignment = LayerAssignment.from_codes(int(pattern), len(tensors))
            expected = two_way_partitioner.evaluate(tensors, assignment)
            assert totals[pattern] == expected.communication_bytes

    def test_total_bytes_matches_communication_model(self, alexnet_model):
        comm = CommunicationModel()
        tensors = model_tensors(alexnet_model, 64)
        table = CostTable.from_tensors(tensors, comm)
        assignment = LayerAssignment.from_codes(0b10110101, len(tensors))
        assert table.total_bytes(assignment) == comm.total_bytes(tensors, assignment)

    def test_rejects_mismatched_assignment(self, lenet_model):
        table = compile_cost_table(lenet_model, 256)
        with pytest.raises(ValueError):
            table.total_bytes(LayerAssignment.uniform(DATA, len(lenet_model) + 1))

    def test_rejects_non_vector_codes(self, lenet_model):
        table = compile_cost_table(lenet_model, 256)
        with pytest.raises(ValueError):
            table.score_codes(np.zeros((2, 2), dtype=np.int64))


class TestArrayDynamicProgram:
    @pytest.mark.parametrize("batch_size", [16, 256, 1024])
    def test_matches_reference_dp_exactly(self, batch_size, alexnet_model):
        partitioner = TwoWayPartitioner()
        tensors = model_tensors(alexnet_model, batch_size)
        vectorized = partitioner.partition_tensors(tensors)
        reference = partitioner.partition_tensors_reference(tensors)
        assert vectorized.communication_bytes == reference.communication_bytes
        assert vectorized.assignment.choices == reference.assignment.choices

    def test_breakdown_is_lazy_but_correct(self, lenet_model, two_way_partitioner):
        tensors = model_tensors(lenet_model, 256)
        result = two_way_partitioner.partition_tensors(tensors)
        reference = two_way_partitioner.partition_tensors_reference(tensors)
        assert [record.total_bytes for record in result.breakdown] == [
            record.total_bytes for record in reference.breakdown
        ]

    def test_dp_tie_rule_prefers_data_parallelism(self):
        """Equal dp/mp costs at every step must resolve to all-dp."""
        from repro.core.tensors import LayerTensors

        tensors = [
            LayerTensors(
                layer_index=i,
                layer_name=f"l{i}",
                is_conv=False,
                feature_in=8.0,
                feature_out=0.0,
                weight=0.0,
                macs=1.0,
            )
            for i in range(3)
        ]
        partitioner = TwoWayPartitioner()
        vectorized = partitioner.partition_tensors(tensors)
        reference = partitioner.partition_tensors_reference(tensors)
        assert vectorized.assignment.choices == reference.assignment.choices
        assert vectorized.assignment.is_uniform(DATA)


class TestExhaustiveParity:
    @pytest.mark.parametrize("batch_size", [16, 256])
    def test_two_way_matches_reference_winner(self, batch_size, lenet_model):
        tensors = model_tensors(lenet_model, batch_size)
        vectorized = exhaustive_two_way(tensors)
        reference = exhaustive_two_way_reference(tensors)
        assert vectorized.communication_bytes == reference.communication_bytes
        assert vectorized.assignment.choices == reference.assignment.choices

    def test_hierarchical_matches_reference_winner(self, tiny_model):
        partitioner = HierarchicalPartitioner(num_levels=2)
        vectorized = exhaustive_hierarchical(
            tiny_model, 8, num_levels=2, partitioner=partitioner
        )
        reference = exhaustive_hierarchical_reference(
            tiny_model, 8, num_levels=2, partitioner=partitioner
        )
        assert (
            vectorized.total_communication_bytes
            == reference.total_communication_bytes
        )
        assert vectorized.assignment.levels == reference.assignment.levels


class TestHierarchicalCostTable:
    @pytest.mark.parametrize("mode", list(ScalingMode))
    def test_total_bytes_matches_object_evaluate(self, mode, lenet_model):
        partitioner = HierarchicalPartitioner(num_levels=3, scaling_mode=mode)
        table = partitioner.compile_table(lenet_model, 256)
        rng = np.random.default_rng(7)
        for _ in range(20):
            assignment = HierarchicalAssignment.of(
                [
                    [int(bit) for bit in rng.integers(0, 2, len(lenet_model))]
                    for _ in range(3)
                ]
            )
            reference = partitioner.evaluate_reference(lenet_model, assignment, 256)
            assert table.total_bytes(assignment) == reference.total_communication_bytes
            evaluated = partitioner.evaluate(lenet_model, assignment, 256, table=table)
            assert (
                evaluated.total_communication_bytes
                == reference.total_communication_bytes
            )
            for fast, slow in zip(evaluated.levels, reference.levels):
                assert fast.communication_bytes == slow.communication_bytes

    def test_score_codes_product_order(self, tiny_model):
        """Candidate index decodes with the last level varying fastest."""
        partitioner = HierarchicalPartitioner(num_levels=2)
        table = partitioner.compile_table(tiny_model, 8)
        layers = len(tiny_model)
        # Candidate 1 flips only layer 0 of the *last* level.
        assignment = table.codes_to_assignment(1)
        assert assignment[1][0] is MODEL
        assert assignment[0].is_uniform(DATA)
        encoded = table.assignment_to_codes(assignment)
        assert encoded == 1
        totals = table.score_codes(np.arange(1 << (2 * layers)))
        for bits in (0, 1, 5, (1 << (2 * layers)) - 1):
            candidate = table.codes_to_assignment(bits)
            assert totals[bits] == table.total_bytes(candidate)

    def test_partition_matches_table_free_search(self, alexnet_model):
        partitioner = HierarchicalPartitioner(num_levels=4)
        table = partitioner.compile_table(alexnet_model, 256)
        with_table = partitioner.partition(alexnet_model, 256, table=table)
        without_table = partitioner.partition(alexnet_model, 256)
        assert (
            with_table.total_communication_bytes
            == without_table.total_communication_bytes
        )
        assert with_table.assignment.levels == without_table.assignment.levels

    def test_rejects_foreign_table(self, lenet_model, alexnet_model):
        partitioner = HierarchicalPartitioner(num_levels=2)
        table = partitioner.compile_table(lenet_model, 256)
        with pytest.raises(ValueError):
            partitioner.partition(alexnet_model, 256, table=table)
        with pytest.raises(ValueError):
            partitioner.partition(lenet_model, 128, table=table)

    def test_evaluate_handles_models_with_64_plus_layers(self):
        """Single-assignment scoring must not pack bits into an int64.

        The object path supported arbitrary depth; the table path decodes
        assignments directly so 64+ weighted layers keep working.
        """
        from repro.core.baselines import data_parallelism
        from repro.nn.layers import ConvLayer
        from repro.nn.model import build_model

        specs = [
            ConvLayer(name=f"conv{i}", out_channels=4, kernel_size=3, padding=1)
            for i in range(70)
        ]
        model = build_model("deep-70", (8, 8, 4), specs)
        partitioner = HierarchicalPartitioner(num_levels=2)
        assignment = data_parallelism(model, 2)
        evaluated = partitioner.evaluate(model, assignment, 8)
        reference = partitioner.evaluate_reference(model, assignment, 8)
        assert (
            evaluated.total_communication_bytes
            == reference.total_communication_bytes
        )
        searched = partitioner.partition(model, 8)
        assert searched.assignment.num_layers == 70

    def test_level_cost_table_gathers_consistent_states(self, lenet_model):
        partitioner = HierarchicalPartitioner(num_levels=3)
        table = partitioner.compile_table(lenet_model, 256)
        states = [0, 1, 2, 1]
        level_table = table.level_cost_table(2, states)
        for layer, state in enumerate(states):
            assert level_table.tensors[layer] is table.tensors_for_level(2, states)[layer]
            assert level_table.intra[layer, 0] == table._intra[2][layer, state, 0]


class TestRestrictedSweep:
    def _communication_evaluator(self, partitioner, model, batch, table):
        def evaluate(assignment):
            return partitioner.evaluate(
                model, assignment, batch, table=table
            ).total_communication_bytes

        return evaluate

    def test_vectorized_sweep_matches_object_sweep(self, lenet_model):
        partitioner = HierarchicalPartitioner(num_levels=2)
        table = partitioner.compile_table(lenet_model, 256)
        base = partitioner.partition(lenet_model, 256, table=table).assignment
        free = [(0, 0), (0, 2), (1, 1), (1, 3)]
        object_points = enumerate_restricted(
            lenet_model,
            256,
            base,
            free,
            self._communication_evaluator(partitioner, lenet_model, 256, table),
        )
        totals = enumerate_restricted_communication(
            lenet_model, 256, base, free, table=table
        )
        assert len(object_points) == len(totals) == 16
        for bits, (assignment, cost) in enumerate(object_points):
            assert totals[bits] == cost
            assert restricted_assignment(base, free, bits).levels == assignment.levels

    def test_restricted_assignment_flips_only_free_positions(self, lenet_model):
        base = HierarchicalAssignment.uniform(DATA, 2, len(lenet_model))
        free = [(1, 2), (0, 0)]
        assignment = restricted_assignment(base, free, 0b01)
        assert assignment.choice(1, 2) is MODEL
        assert assignment.choice(0, 0) is DATA
        flipped = {(1, 2)}
        for level in range(2):
            for layer in range(len(lenet_model)):
                expected = MODEL if (level, layer) in flipped else DATA
                assert assignment.choice(level, layer) is expected

    def test_sweep_rejects_stale_table(self, lenet_model, alexnet_model):
        partitioner = HierarchicalPartitioner(num_levels=2)
        base = HierarchicalAssignment.uniform(DATA, 2, len(lenet_model))
        wrong_batch = partitioner.compile_table(lenet_model, 32)
        with pytest.raises(ValueError):
            enumerate_restricted_communication(
                lenet_model, 256, base, [(0, 0)], table=wrong_batch
            )
        wrong_model = partitioner.compile_table(alexnet_model, 256)
        with pytest.raises(ValueError):
            enumerate_restricted_communication(
                lenet_model, 256, base, [(0, 0)], table=wrong_model
            )

    def test_sweep_without_table_compiles_one(self, lenet_model):
        base = HierarchicalAssignment.uniform(DATA, 2, len(lenet_model))
        partitioner = HierarchicalPartitioner(num_levels=2)
        totals = enumerate_restricted_communication(
            lenet_model, 256, base, [(0, 0)], partitioner=partitioner
        )
        expected = partitioner.evaluate(
            lenet_model, base, 256
        ).total_communication_bytes
        assert totals[0] == expected


class TestLazyBreakdown:
    def test_evaluate_defers_breakdown(self, lenet_model, two_way_partitioner):
        tensors = model_tensors(lenet_model, 256)
        assignment = LayerAssignment.uniform(DATA, len(lenet_model))
        result = two_way_partitioner.evaluate(tensors, assignment)
        assert result._breakdown is None  # not materialized yet
        breakdown = result.breakdown
        assert result._breakdown is not None  # cached after first access
        assert result.breakdown is breakdown
        assert sum(r.total_bytes for r in breakdown) == pytest.approx(
            result.communication_bytes
        )

    def test_hierarchical_evaluate_defers_breakdown(self, lenet_model):
        partitioner = HierarchicalPartitioner(num_levels=2)
        assignment = HierarchicalAssignment.uniform(MODEL, 2, len(lenet_model))
        result = partitioner.evaluate(lenet_model, assignment, 256)
        for level in result.levels:
            assert level._breakdown is None
        reference = partitioner.evaluate_reference(lenet_model, assignment, 256)
        for fast, slow in zip(result.levels, reference.levels):
            assert [r.total_bytes for r in fast.breakdown] == [
                r.total_bytes for r in slow.breakdown
            ]


class TestDagBlockDynamicProgram:
    """Deterministic pins of the cut-vertex DP's block machinery."""

    def _skip_table(self, num_layers, strategies=None):
        from repro.core.tensors import LayerTensors

        rng = np.random.default_rng(7)
        tensors = [
            LayerTensors(
                layer_index=index,
                layer_name=f"layer{index}",
                is_conv=bool(index % 2),
                feature_in=float(rng.uniform(1, 1e7)),
                feature_out=float(rng.uniform(1, 1e7)),
                weight=float(rng.uniform(1, 1e7)),
                macs=1.0,
            )
            for index in range(num_layers)
        ]
        # A chain plus one skip spanning the whole model: the only cut
        # vertices are the endpoints, so the DP enumerates one big block.
        edges = tuple((i, i + 1) for i in range(num_layers - 1)) + (
            (0, num_layers - 1),
        )
        return CostTable.from_tensors(tensors, strategies=strategies, edges=edges)

    def test_cut_vertices_of_skip_model(self):
        table = self._skip_table(6)
        assert table.cut_vertices() == [0, 5]
        assert not table.is_chain

    def test_single_block_spanning_multiple_chunks_matches_brute_force(self):
        # 2^18 patterns = four DEFAULT_CHUNK_SIZE chunks through one block.
        table = self._skip_table(18)
        searched = table.dp_partition()
        _, brute_total = table.argmin_assignment()
        assert searched.communication_bytes == brute_total
        assert table.total_bytes(searched.assignment) == searched.communication_bytes

    def test_base_three_block_matches_brute_force(self):
        table = self._skip_table(9, strategies="dp,mp,pp")
        searched = table.dp_partition()
        _, brute_total = table.argmin_assignment()
        assert searched.communication_bytes == brute_total

    def test_oversized_block_raises(self):
        from repro.core.costs import DEFAULT_MAX_BLOCK_PATTERNS

        table = self._skip_table(30)
        assert 2 ** 30 > DEFAULT_MAX_BLOCK_PATTERNS
        with pytest.raises(ValueError, match="branch interior"):
            table.dp_partition()
