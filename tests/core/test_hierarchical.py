"""Tests for Algorithm 2 (the hierarchical partitioner)."""

import pytest

from repro.core.hierarchical import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_NUM_LEVELS,
    HierarchicalPartitioner,
)
from repro.core.parallelism import DATA, MODEL, HierarchicalAssignment, LayerAssignment
from repro.core.tensors import ScalingMode


class TestConfiguration:
    def test_paper_defaults(self):
        partitioner = HierarchicalPartitioner()
        assert partitioner.num_levels == DEFAULT_NUM_LEVELS == 4
        assert partitioner.num_accelerators == 16
        assert DEFAULT_BATCH_SIZE == 256

    def test_rejects_non_positive_levels(self):
        with pytest.raises(ValueError):
            HierarchicalPartitioner(num_levels=0)

    def test_scaling_mode_parsed_from_string(self):
        partitioner = HierarchicalPartitioner(scaling_mode="none")
        assert partitioner.scaling_mode is ScalingMode.NONE


class TestPartitionStructure:
    def test_result_shape(self, hierarchical_partitioner, lenet_model):
        result = hierarchical_partitioner.partition(lenet_model, 256)
        assert result.num_levels == 4
        assert result.num_accelerators == 16
        assert result.assignment.num_layers == len(lenet_model)
        assert len(result.levels) == 4

    def test_level_pair_counts_double(self, hierarchical_partitioner, lenet_model):
        result = hierarchical_partitioner.partition(lenet_model, 256)
        assert [level.num_pairs for level in result.levels] == [1, 2, 4, 8]

    def test_total_is_sum_of_level_totals(self, hierarchical_partitioner, alexnet_model):
        result = hierarchical_partitioner.partition(alexnet_model, 256)
        assert result.total_communication_bytes == pytest.approx(
            sum(level.total_bytes for level in result.levels)
        )

    def test_level_total_is_pairs_times_per_pair(self, hierarchical_partitioner, lenet_model):
        result = hierarchical_partitioner.partition(lenet_model, 256)
        for level in result.levels:
            assert level.total_bytes == pytest.approx(
                level.communication_bytes * level.num_pairs
            )

    def test_describe_mentions_every_layer_and_level(
        self, hierarchical_partitioner, lenet_model
    ):
        text = hierarchical_partitioner.partition(lenet_model, 256).describe()
        for layer in lenet_model.layer_names():
            assert layer in text
        for level in ("H1", "H2", "H3", "H4"):
            assert level in text


class TestSearchQuality:
    def test_search_no_worse_than_uniform_baselines(
        self, hierarchical_partitioner, alexnet_model
    ):
        searched = hierarchical_partitioner.partition(alexnet_model, 256)
        for uniform in (DATA, MODEL):
            baseline = hierarchical_partitioner.evaluate_uniform(alexnet_model, uniform, 256)
            assert (
                searched.total_communication_bytes
                <= baseline.total_communication_bytes + 1e-6
            )

    def test_search_no_worse_than_repeating_level_zero(
        self, hierarchical_partitioner, vgg_a_model
    ):
        searched = hierarchical_partitioner.partition(vgg_a_model, 256)
        repeated = hierarchical_partitioner.evaluate_per_level(
            vgg_a_model, searched.assignment[0], 256
        )
        assert (
            searched.total_communication_bytes
            <= repeated.total_communication_bytes + 1e-6
        )

    def test_sconv_optimises_to_pure_data_parallelism(
        self, hierarchical_partitioner, sconv_model
    ):
        """Figure 5 (b): every layer of SCONV at every level is dp."""
        result = hierarchical_partitioner.partition(sconv_model, 256)
        assert result.assignment.is_uniform(DATA)

    def test_sfc_optimises_to_mostly_model_parallelism(
        self, hierarchical_partitioner, sfc_model
    ):
        """Figure 5 (a): SFC is dominated by mp at every level."""
        result = hierarchical_partitioner.partition(sfc_model, 256)
        mp_count = sum(level.count(MODEL) for level in result.assignment)
        total = result.assignment.num_levels * result.assignment.num_layers
        assert mp_count >= total - 1

    def test_alexnet_matches_figure5_pattern(self, hierarchical_partitioner, alexnet_model):
        """Figure 5 (e): conv layers dp, fc layers mp, at every level."""
        result = hierarchical_partitioner.partition(alexnet_model, 256)
        for level in result.assignment:
            for layer, choice in zip(alexnet_model, level):
                if layer.is_conv:
                    assert choice is DATA

    def test_lenet_fc_layers_become_model_parallel_at_deeper_levels(
        self, hierarchical_partitioner, lenet_model
    ):
        """With parallelism-aware scaling, deeper levels see smaller batches and
        flip the fully-connected layers of Lenet-c towards model parallelism."""
        result = hierarchical_partitioner.partition(lenet_model, 256)
        fc1 = lenet_model.layer_by_name("fc1").index
        deepest = result.assignment[result.num_levels - 1]
        assert deepest[fc1] is MODEL


class TestEvaluate:
    def test_evaluate_uniform_matches_manual_assignment(
        self, hierarchical_partitioner, lenet_model
    ):
        manual = HierarchicalAssignment.uniform(DATA, 4, len(lenet_model))
        by_helper = hierarchical_partitioner.evaluate_uniform(lenet_model, DATA, 256)
        by_evaluate = hierarchical_partitioner.evaluate(lenet_model, manual, 256)
        assert by_helper.total_communication_bytes == pytest.approx(
            by_evaluate.total_communication_bytes
        )

    def test_evaluate_of_searched_assignment_reproduces_cost(
        self, hierarchical_partitioner, alexnet_model
    ):
        searched = hierarchical_partitioner.partition(alexnet_model, 256)
        evaluated = hierarchical_partitioner.evaluate(
            alexnet_model, searched.assignment, 256
        )
        assert evaluated.total_communication_bytes == pytest.approx(
            searched.total_communication_bytes
        )

    def test_evaluate_rejects_level_mismatch(self, hierarchical_partitioner, lenet_model):
        wrong = HierarchicalAssignment.uniform(DATA, 3, len(lenet_model))
        with pytest.raises(ValueError):
            hierarchical_partitioner.evaluate(lenet_model, wrong, 256)

    def test_evaluate_rejects_layer_mismatch(self, hierarchical_partitioner, lenet_model):
        wrong = HierarchicalAssignment.uniform(DATA, 4, len(lenet_model) + 1)
        with pytest.raises(ValueError):
            hierarchical_partitioner.evaluate(lenet_model, wrong, 256)

    def test_evaluate_per_level_repeats_one_list(self, hierarchical_partitioner, lenet_model):
        level = LayerAssignment.of(["dp", "dp", "mp", "mp"])
        result = hierarchical_partitioner.evaluate_per_level(lenet_model, level, 256)
        for level_result in result.levels:
            assert level_result.assignment == level


class TestScalingModes:
    def test_none_mode_repeats_the_same_list_at_every_level(self, lenet_model):
        partitioner = HierarchicalPartitioner(num_levels=4, scaling_mode=ScalingMode.NONE)
        result = partitioner.partition(lenet_model, 256)
        first = result.assignment[0]
        assert all(level == first for level in result.assignment)

    def test_none_mode_levels_have_equal_per_pair_cost(self, lenet_model):
        partitioner = HierarchicalPartitioner(num_levels=4, scaling_mode="none")
        result = partitioner.partition(lenet_model, 256)
        costs = [level.communication_bytes for level in result.levels]
        assert all(cost == pytest.approx(costs[0]) for cost in costs)

    def test_data_parallel_total_is_identical_across_scaling_modes(self, vgg_a_model):
        """All-dp never partitions weights, so gradient traffic is scaling-mode
        independent under parallelism-aware scaling versus none."""
        aware = HierarchicalPartitioner(num_levels=4, scaling_mode="parallelism-aware")
        literal = HierarchicalPartitioner(num_levels=4, scaling_mode="none")
        cost_aware = aware.evaluate_uniform(vgg_a_model, DATA, 256).total_communication_bytes
        cost_literal = literal.evaluate_uniform(
            vgg_a_model, DATA, 256
        ).total_communication_bytes
        assert cost_aware == pytest.approx(cost_literal)

    def test_uniform_mode_costs_less_than_none_mode(self, vgg_a_model):
        uniform = HierarchicalPartitioner(num_levels=4, scaling_mode="uniform")
        literal = HierarchicalPartitioner(num_levels=4, scaling_mode="none")
        assert (
            uniform.partition(vgg_a_model, 256).total_communication_bytes
            < literal.partition(vgg_a_model, 256).total_communication_bytes
        )


class TestPaperCommunicationMagnitudes:
    """Absolute totals that should land close to Figure 8's reported values."""

    def test_vgg_a_data_parallelism_close_to_paper(self, hierarchical_partitioner, vgg_a_model):
        """The paper reports 15.9 GB/step for VGG-A under Data Parallelism."""
        result = hierarchical_partitioner.evaluate_uniform(vgg_a_model, DATA, 256)
        assert 13e9 < result.total_communication_bytes < 19e9

    def test_vgg_a_hypar_close_to_paper(self, hierarchical_partitioner, vgg_a_model):
        """The paper reports 1.47 GB/step for VGG-A under HyPar."""
        result = hierarchical_partitioner.partition(vgg_a_model, 256)
        assert 0.7e9 < result.total_communication_bytes < 3e9

    def test_hypar_beats_data_parallelism_by_about_an_order_of_magnitude(
        self, hierarchical_partitioner, vgg_a_model
    ):
        dp = hierarchical_partitioner.evaluate_uniform(vgg_a_model, DATA, 256)
        hypar = hierarchical_partitioner.partition(vgg_a_model, 256)
        ratio = dp.total_communication_bytes / hypar.total_communication_bytes
        assert ratio > 5
