"""Tests for the exhaustive / restricted enumeration machinery."""

import pytest

from repro.core.exhaustive import (
    SearchSpaceTooLarge,
    all_layer_assignments,
    enumerate_restricted,
    exhaustive_hierarchical,
    exhaustive_two_way,
)
from repro.core.hierarchical import HierarchicalPartitioner
from repro.core.parallelism import DATA, MODEL, HierarchicalAssignment
from repro.core.tensors import model_tensors


class TestAllLayerAssignments:
    def test_count_is_two_to_the_layers(self):
        assert len(list(all_layer_assignments(3))) == 8

    def test_assignments_are_unique(self):
        assignments = list(all_layer_assignments(4))
        assert len({a.to_codes() for a in assignments}) == 16

    def test_rejects_non_positive_layer_count(self):
        with pytest.raises(ValueError):
            list(all_layer_assignments(0))


class TestExhaustiveTwoWay:
    def test_matches_dynamic_program(self, two_way_partitioner, lenet_model):
        tensors = model_tensors(lenet_model, 256)
        brute = exhaustive_two_way(tensors)
        searched = two_way_partitioner.partition_tensors(tensors)
        assert brute.communication_bytes == pytest.approx(searched.communication_bytes)

    def test_respects_candidate_limit(self, vgg_a_model):
        tensors = model_tensors(vgg_a_model, 256)
        with pytest.raises(SearchSpaceTooLarge):
            exhaustive_two_way(tensors, max_candidates=16)

    def test_single_layer_search(self, tiny_model):
        tensors = model_tensors(tiny_model, 8)
        result = exhaustive_two_way(tensors[:1])
        assert result.num_layers == 1


class TestExhaustiveHierarchical:
    def test_greedy_hierarchical_matches_brute_force_on_tiny_model(self, tiny_model):
        """With two layers and two levels the whole space has 16 assignments."""
        partitioner = HierarchicalPartitioner(num_levels=2)
        brute = exhaustive_hierarchical(tiny_model, 8, num_levels=2, partitioner=partitioner)
        greedy = partitioner.partition(tiny_model, 8)
        assert greedy.total_communication_bytes == pytest.approx(
            brute.total_communication_bytes
        )

    def test_respects_candidate_limit(self, lenet_model):
        with pytest.raises(SearchSpaceTooLarge):
            exhaustive_hierarchical(lenet_model, 256, num_levels=4, max_candidates=64)

    def test_rejects_mismatched_partitioner(self, tiny_model):
        partitioner = HierarchicalPartitioner(num_levels=3)
        with pytest.raises(ValueError):
            exhaustive_hierarchical(tiny_model, 8, num_levels=2, partitioner=partitioner)


class TestEnumerateRestricted:
    def _evaluator(self, partitioner, model, batch):
        def evaluate(assignment):
            return partitioner.evaluate(model, assignment, batch).total_communication_bytes

        return evaluate

    def test_point_count_is_two_to_the_free_positions(self, lenet_model):
        partitioner = HierarchicalPartitioner(num_levels=2)
        base = HierarchicalAssignment.uniform(DATA, 2, len(lenet_model))
        free = [(0, 0), (1, 3)]
        points = enumerate_restricted(
            lenet_model, 256, base, free, self._evaluator(partitioner, lenet_model, 256)
        )
        assert len(points) == 4

    def test_fixed_positions_are_preserved(self, lenet_model):
        partitioner = HierarchicalPartitioner(num_levels=2)
        base = HierarchicalAssignment.uniform(DATA, 2, len(lenet_model))
        free = [(0, 0)]
        points = enumerate_restricted(
            lenet_model, 256, base, free, self._evaluator(partitioner, lenet_model, 256)
        )
        for assignment, _ in points:
            # Every position except (0, 0) keeps the base value (dp).
            for level in range(2):
                for layer in range(len(lenet_model)):
                    if (level, layer) == (0, 0):
                        continue
                    assert assignment.choice(level, layer) is DATA

    def test_bit_order_is_lsb_first(self, lenet_model):
        partitioner = HierarchicalPartitioner(num_levels=2)
        base = HierarchicalAssignment.uniform(DATA, 2, len(lenet_model))
        free = [(0, 0), (0, 1)]
        points = enumerate_restricted(
            lenet_model, 256, base, free, self._evaluator(partitioner, lenet_model, 256)
        )
        # Candidate index 1 flips only the first free position.
        assignment, _ = points[1]
        assert assignment.choice(0, 0) is MODEL
        assert assignment.choice(0, 1) is DATA

    def test_sweep_covers_hypars_choice(self, lenet_model):
        """The restricted sweep contains a point at least as good as HyPar's."""
        partitioner = HierarchicalPartitioner(num_levels=2)
        searched = partitioner.partition(lenet_model, 256)
        free = [(level, layer) for level in range(2) for layer in range(len(lenet_model))]
        points = enumerate_restricted(
            lenet_model,
            256,
            searched.assignment,
            free,
            self._evaluator(partitioner, lenet_model, 256),
        )
        best = min(cost for _, cost in points)
        assert best <= searched.total_communication_bytes + 1e-6

    def test_rejects_empty_free_positions(self, lenet_model):
        base = HierarchicalAssignment.uniform(DATA, 2, len(lenet_model))
        with pytest.raises(ValueError):
            enumerate_restricted(lenet_model, 256, base, [], lambda a: 0.0)

    def test_rejects_out_of_range_positions(self, lenet_model):
        base = HierarchicalAssignment.uniform(DATA, 2, len(lenet_model))
        with pytest.raises(ValueError):
            enumerate_restricted(lenet_model, 256, base, [(5, 0)], lambda a: 0.0)
        with pytest.raises(ValueError):
            enumerate_restricted(lenet_model, 256, base, [(0, 99)], lambda a: 0.0)

    def test_respects_candidate_limit(self, lenet_model):
        base = HierarchicalAssignment.uniform(DATA, 2, len(lenet_model))
        free = [(0, layer) for layer in range(4)] + [(1, layer) for layer in range(4)]
        with pytest.raises(SearchSpaceTooLarge):
            enumerate_restricted(
                lenet_model, 256, base, free, lambda a: 0.0, max_candidates=16
            )
