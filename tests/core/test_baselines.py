"""Tests for the baseline strategies (defaults, the trick, random)."""

import pytest

from repro.core.baselines import (
    STRATEGIES,
    data_parallelism,
    get_strategy,
    model_parallelism,
    one_weird_trick,
    pipeline_parallelism,
    random_assignment,
)
from repro.core.parallelism import DATA, MODEL


class TestUniformBaselines:
    def test_data_parallelism_is_uniform_dp(self, alexnet_model):
        assignment = data_parallelism(alexnet_model, 4)
        assert assignment.is_uniform(DATA)
        assert assignment.num_levels == 4
        assert assignment.num_layers == len(alexnet_model)

    def test_model_parallelism_is_uniform_mp(self, alexnet_model):
        assignment = model_parallelism(alexnet_model, 3)
        assert assignment.is_uniform(MODEL)
        assert assignment.num_accelerators == 8


class TestOneWeirdTrick:
    def test_conv_layers_get_dp_and_fc_layers_get_mp(self, alexnet_model):
        assignment = one_weird_trick(alexnet_model, 4)
        for level in assignment:
            for layer, choice in zip(alexnet_model, level):
                expected = DATA if layer.is_conv else MODEL
                assert choice is expected

    def test_same_list_at_every_level(self, vgg_a_model):
        assignment = one_weird_trick(vgg_a_model, 4)
        assert all(level == assignment[0] for level in assignment)

    def test_trick_on_all_conv_network_equals_data_parallelism(self, sconv_model):
        assert one_weird_trick(sconv_model, 2) == data_parallelism(sconv_model, 2)

    def test_trick_on_all_fc_network_equals_model_parallelism(self, sfc_model):
        assert one_weird_trick(sfc_model, 2) == model_parallelism(sfc_model, 2)


class TestRandomAssignment:
    def test_shape(self, lenet_model):
        assignment = random_assignment(lenet_model, 4, seed=7)
        assert assignment.num_levels == 4
        assert assignment.num_layers == len(lenet_model)

    def test_seed_reproducibility(self, lenet_model):
        first = random_assignment(lenet_model, 4, seed=123)
        second = random_assignment(lenet_model, 4, seed=123)
        assert first == second

    def test_different_seeds_usually_differ(self, vgg_a_model):
        assignments = {random_assignment(vgg_a_model, 4, seed=s) for s in range(5)}
        assert len(assignments) > 1


class TestGetStrategy:
    def test_registry_contains_four_named_strategies(self):
        assert set(STRATEGIES) == {
            "data-parallelism",
            "model-parallelism",
            "pipeline-parallelism",
            "one-weird-trick",
        }

    @pytest.mark.parametrize(
        "name,function",
        [
            ("data-parallelism", data_parallelism),
            ("dp", data_parallelism),
            ("Data", data_parallelism),
            ("model_parallelism", model_parallelism),
            ("mp", model_parallelism),
            ("pipeline-parallelism", pipeline_parallelism),
            ("pp", pipeline_parallelism),
            ("Pipeline", pipeline_parallelism),
            ("one-weird-trick", one_weird_trick),
            ("trick", one_weird_trick),
            ("OWT", one_weird_trick),
        ],
    )
    def test_lookup_by_name_and_alias(self, name, function):
        assert get_strategy(name) is function

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError):
            get_strategy("tensor-slicing")
