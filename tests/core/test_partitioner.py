"""Tests for Algorithm 1 (the two-way dynamic-programming partitioner)."""

import pytest

from repro.core.communication import CommunicationModel
from repro.core.exhaustive import exhaustive_two_way
from repro.core.parallelism import DATA, MODEL, LayerAssignment
from repro.core.partitioner import TwoWayPartitioner
from repro.core.tensors import model_tensors
from repro.nn.layers import ConvLayer, FCLayer, PoolSpec
from repro.nn.model import build_model
from repro.nn.model_zoo import alexnet, all_models, lenet_c, sconv, sfc


class TestPartitionBasics:
    def test_result_has_one_choice_per_layer(self, two_way_partitioner, lenet_model):
        result = two_way_partitioner.partition(lenet_model, 256)
        assert result.num_layers == len(lenet_model)

    def test_total_matches_breakdown(self, two_way_partitioner, alexnet_model):
        result = two_way_partitioner.partition(alexnet_model, 256)
        assert result.communication_bytes == pytest.approx(
            sum(record.total_bytes for record in result.breakdown)
        )

    def test_communication_is_non_negative(self, two_way_partitioner, lenet_model):
        result = two_way_partitioner.partition(lenet_model, 256)
        assert result.communication_bytes >= 0
        assert all(record.total_bytes >= 0 for record in result.breakdown)

    def test_empty_tensor_list_rejected(self, two_way_partitioner):
        with pytest.raises(ValueError):
            two_way_partitioner.partition_tensors([])

    def test_single_layer_picks_cheaper_intra(self, two_way_partitioner):
        fc = build_model("fc", (1, 1, 70), [FCLayer(name="fc", out_features=100)])
        conv = build_model(
            "conv", (12, 12, 20), [ConvLayer(name="conv", out_channels=50, kernel_size=5)]
        )
        assert two_way_partitioner.partition(fc, 32).assignment[0] is MODEL
        assert two_way_partitioner.partition(conv, 32).assignment[0] is DATA

    def test_default_communication_model_created(self):
        partitioner = TwoWayPartitioner()
        assert isinstance(partitioner.communication_model, CommunicationModel)


class TestOptimalityAgainstExhaustiveSearch:
    """The dynamic program must equal brute force on every feasible network."""

    @pytest.mark.parametrize("model_builder", [sfc, sconv, lenet_c])
    @pytest.mark.parametrize("batch_size", [16, 256])
    def test_small_networks(self, model_builder, batch_size):
        model = model_builder()
        tensors = model_tensors(model, batch_size)
        partitioner = TwoWayPartitioner()
        dp_result = partitioner.partition_tensors(tensors)
        brute = exhaustive_two_way(tensors)
        assert dp_result.communication_bytes == pytest.approx(brute.communication_bytes)

    def test_alexnet(self):
        tensors = model_tensors(alexnet(), 256)
        partitioner = TwoWayPartitioner()
        assert partitioner.partition_tensors(tensors).communication_bytes == pytest.approx(
            exhaustive_two_way(tensors).communication_bytes
        )

    @pytest.mark.parametrize("batch_size", [4, 64, 1024])
    def test_every_evaluation_network_is_no_worse_than_defaults(self, batch_size):
        partitioner = TwoWayPartitioner()
        for model in all_models():
            tensors = model_tensors(model, batch_size)
            best = partitioner.partition_tensors(tensors).communication_bytes
            for uniform in (DATA, MODEL):
                assignment = LayerAssignment.uniform(uniform, len(model))
                cost = partitioner.evaluate(tensors, assignment).communication_bytes
                assert best <= cost + 1e-6


class TestQualitativeChoices:
    def test_sconv_is_pure_data_parallelism(self, two_way_partitioner, sconv_model):
        result = two_way_partitioner.partition(sconv_model, 256)
        assert result.assignment.is_uniform(DATA)

    def test_sfc_is_mostly_model_parallelism(self, two_way_partitioner, sfc_model):
        result = two_way_partitioner.partition(sfc_model, 256)
        assert result.assignment.count(MODEL) >= 3

    def test_alexnet_conv_layers_prefer_dp_and_fc_layers_prefer_mp(
        self, two_way_partitioner, alexnet_model
    ):
        result = two_way_partitioner.partition(alexnet_model, 256)
        for layer, choice in zip(alexnet_model, result.assignment):
            if layer.is_conv:
                assert choice is DATA, f"{layer.name} should be dp"
        fc_choices = [
            choice
            for layer, choice in zip(alexnet_model, result.assignment)
            if layer.is_fc
        ]
        assert fc_choices.count(MODEL) >= 2

    def test_batch_size_can_flip_decisions(self, two_way_partitioner):
        """A late conv layer flips from dp to mp when the effective batch shrinks.

        Section 6.5.2: conv5 of VGG-E at batch 32 has A(dW) = 2,359,296 and
        A(F_{l+1}) = 3,211,264, so at the whole batch dp still wins; but once
        the batch is halved (as it is for the groups of deeper hierarchy
        levels) the output feature map becomes the smaller tensor and the
        layer prefers mp -- which is why the trick (always dp for conv)
        loses more at deeper hierarchies.
        """
        from repro.core.tensors import TensorScale
        from repro.nn.model_zoo import vgg_e

        model = vgg_e()
        conv5 = model.layer_by_name("conv5_4")
        sub = build_model("conv5-only", conv5.input_shape, [conv5.spec])
        whole_batch = two_way_partitioner.partition(sub, 32).assignment[0]
        quarter_batch = two_way_partitioner.partition(
            sub, 32, scales=[TensorScale(batch_fraction=0.25)]
        ).assignment[0]
        large_batch = two_way_partitioner.partition(sub, 4096).assignment[0]
        assert whole_batch is DATA
        assert quarter_batch is MODEL
        assert large_batch is DATA


class TestEvaluate:
    def test_evaluate_uniform_data_parallelism_cost(self, two_way_partitioner, lenet_model):
        tensors = model_tensors(lenet_model, 256)
        assignment = LayerAssignment.uniform(DATA, len(lenet_model))
        result = two_way_partitioner.evaluate(tensors, assignment)
        expected = sum(t.gradient for t in tensors) * 4 * 2
        assert result.communication_bytes == pytest.approx(expected)

    def test_evaluate_preserves_assignment(self, two_way_partitioner, lenet_model):
        tensors = model_tensors(lenet_model, 256)
        assignment = LayerAssignment.of(["mp", "dp", "mp", "dp"])
        result = two_way_partitioner.evaluate(tensors, assignment)
        assert result.assignment is assignment

    def test_searched_cost_never_exceeds_any_manual_assignment(
        self, two_way_partitioner, lenet_model
    ):
        tensors = model_tensors(lenet_model, 256)
        best = two_way_partitioner.partition_tensors(tensors).communication_bytes
        for bits in range(1 << len(lenet_model)):
            assignment = LayerAssignment.from_codes(bits, len(lenet_model))
            assert best <= two_way_partitioner.evaluate(tensors, assignment).communication_bytes + 1e-9


class TestLinearTimeScaling:
    def test_partition_handles_deep_synthetic_networks(self, two_way_partitioner):
        """A 200-layer synthetic network partitions without blowing up (O(L) search)."""
        specs = []
        for index in range(200):
            specs.append(
                ConvLayer(
                    name=f"conv{index}",
                    out_channels=8,
                    kernel_size=3,
                    padding=1,
                    pool=PoolSpec(2) if index in (50, 100, 150) else None,
                )
            )
        model = build_model("deep", (64, 64, 8), specs)
        result = two_way_partitioner.partition(model, 8)
        assert result.num_layers == 200
