"""Tests for parallelism types, strategy spaces and assignments."""

import pytest

from repro.core.parallelism import (
    DATA,
    DEFAULT_SPACE,
    FULL_SPACE,
    MODEL,
    PIPELINE,
    HierarchicalAssignment,
    LayerAssignment,
    Parallelism,
    StrategySpace,
)


class TestParallelism:
    def test_three_members(self):
        assert set(Parallelism) == {
            Parallelism.DATA,
            Parallelism.MODEL,
            Parallelism.PIPELINE,
        }

    def test_short_names(self):
        assert Parallelism.DATA.short == "dp"
        assert Parallelism.MODEL.short == "mp"
        assert Parallelism.PIPELINE.short == "pp"

    def test_bit_encoding_roundtrip(self):
        for member in (DATA, MODEL):
            assert Parallelism.from_bit(member.bit) is member

    def test_pipeline_has_no_bit(self):
        with pytest.raises(ValueError):
            Parallelism.PIPELINE.bit

    def test_from_bit_rejects_other_values(self):
        with pytest.raises(ValueError):
            Parallelism.from_bit(2)

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("dp", DATA),
            ("DP", DATA),
            ("data", DATA),
            ("mp", MODEL),
            ("model", MODEL),
            (" Model_Parallelism ".strip(), MODEL),
            ("0", DATA),
            ("1", MODEL),
            ("pp", PIPELINE),
            ("pipeline", PIPELINE),
            ("2", PIPELINE),
        ],
    )
    def test_parse(self, text, expected):
        assert Parallelism.parse(text) is expected

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Parallelism.parse("tensor-slicing")

    def test_module_level_aliases(self):
        assert DATA is Parallelism.DATA
        assert MODEL is Parallelism.MODEL
        assert PIPELINE is Parallelism.PIPELINE


class TestStrategySpace:
    def test_default_space_is_binary_dp_mp(self):
        assert DEFAULT_SPACE.members == (DATA, MODEL)
        assert DEFAULT_SPACE.size == 2

    def test_full_space_contains_pipeline(self):
        assert FULL_SPACE.members == (DATA, MODEL, PIPELINE)

    def test_parse_from_string(self):
        space = StrategySpace.parse("dp,mp,pp")
        assert space.members == (DATA, MODEL, PIPELINE)

    def test_parse_none_yields_default(self):
        assert StrategySpace.parse(None) == DEFAULT_SPACE

    def test_parse_is_idempotent(self):
        assert StrategySpace.parse(DEFAULT_SPACE) is DEFAULT_SPACE

    def test_code_roundtrip(self):
        space = StrategySpace.parse("dp,mp,pp")
        for code, member in enumerate(space):
            assert space.code_of(member) == code
            assert space.member(code) is member

    def test_code_of_rejects_non_members(self):
        with pytest.raises(ValueError):
            DEFAULT_SPACE.code_of(PIPELINE)

    def test_member_range_check(self):
        with pytest.raises(ValueError):
            DEFAULT_SPACE.member(2)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            StrategySpace.parse("dp,dp")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StrategySpace(())

    def test_num_assignments(self):
        assert DEFAULT_SPACE.num_assignments(4) == 16
        assert StrategySpace.parse("dp,mp,pp").num_assignments(3) == 27

    def test_describe(self):
        assert StrategySpace.parse("dp,mp,pp").describe() == "dp,mp,pp"


class TestLayerAssignment:
    def test_of_accepts_mixed_inputs(self):
        assignment = LayerAssignment.of([DATA, "mp", 0, 1])
        assert assignment.choices == (DATA, MODEL, DATA, MODEL)

    def test_of_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            LayerAssignment.of([2.5])

    def test_uniform(self):
        assignment = LayerAssignment.uniform(DATA, 5)
        assert assignment.is_uniform(DATA)
        assert not assignment.is_uniform(MODEL)
        assert len(assignment) == 5

    def test_uniform_rejects_non_positive_length(self):
        with pytest.raises(ValueError):
            LayerAssignment.uniform(DATA, 0)

    def test_empty_assignment_rejected(self):
        with pytest.raises(ValueError):
            LayerAssignment(())

    def test_bits_roundtrip(self):
        for bits in range(16):
            with pytest.warns(DeprecationWarning, match="from_bits is deprecated"):
                assignment = LayerAssignment.from_bits(bits, 4)
            with pytest.warns(DeprecationWarning, match="to_bits is deprecated"):
                assert assignment.to_bits() == bits

    def test_from_bits_layout_is_lsb_first(self):
        with pytest.warns(DeprecationWarning, match="from_bits is deprecated"):
            assignment = LayerAssignment.from_bits(0b0011, 4)
        assert assignment.choices == (MODEL, MODEL, DATA, DATA)

    def test_from_bits_range_check(self):
        with pytest.warns(DeprecationWarning, match="from_bits is deprecated"):
            with pytest.raises(ValueError):
                LayerAssignment.from_bits(16, 4)

    def test_codes_roundtrip_base_three(self):
        space = StrategySpace.parse("dp,mp,pp")
        for codes in range(3 ** 3):
            assignment = LayerAssignment.from_codes(codes, 3, space)
            assert assignment.to_codes(space) == codes

    def test_from_codes_layout_is_least_significant_digit_first(self):
        space = StrategySpace.parse("dp,mp,pp")
        # 5 = 2 + 1*3: layer 0 -> code 2 (pp), layer 1 -> code 1 (mp).
        assignment = LayerAssignment.from_codes(5, 3, space)
        assert assignment.choices == (PIPELINE, MODEL, DATA)

    def test_from_codes_range_check(self):
        with pytest.raises(ValueError):
            LayerAssignment.from_codes(27, 3, StrategySpace.parse("dp,mp,pp"))

    def test_bit_shims_are_exact_over_the_binary_space(self):
        """from_bits/to_bits must warn but stay bit-exact shims of from_codes/to_codes."""
        for num_layers in (1, 3, 6):
            for bits in range(1 << num_layers):
                with pytest.warns(DeprecationWarning, match="from_bits is deprecated"):
                    via_bits = LayerAssignment.from_bits(bits, num_layers)
                via_codes = LayerAssignment.from_codes(bits, num_layers, DEFAULT_SPACE)
                assert via_bits.choices == via_codes.choices
                with pytest.warns(DeprecationWarning, match="to_bits is deprecated"):
                    assert via_bits.to_bits() == via_codes.to_codes(DEFAULT_SPACE) == bits

    def test_count(self):
        assignment = LayerAssignment.of(["dp", "mp", "dp"])
        assert assignment.count(DATA) == 2
        assert assignment.count(MODEL) == 1

    def test_indexing_and_iteration(self):
        assignment = LayerAssignment.of(["dp", "mp"])
        assert assignment[0] is DATA
        assert list(assignment) == [DATA, MODEL]

    def test_as_strings_and_str(self):
        assignment = LayerAssignment.of(["dp", "mp"])
        assert assignment.as_strings() == ["dp", "mp"]
        assert str(assignment) == "dp-mp"


class TestHierarchicalAssignment:
    def _make(self):
        return HierarchicalAssignment.of([["dp", "dp", "mp"], ["dp", "mp", "mp"]])

    def test_shape_properties(self):
        assignment = self._make()
        assert assignment.num_levels == 2
        assert assignment.num_layers == 3
        assert assignment.num_accelerators == 4

    def test_choice_lookup(self):
        assignment = self._make()
        assert assignment.choice(0, 2) is MODEL
        assert assignment.choice(1, 0) is DATA

    def test_layer_choices(self):
        assignment = self._make()
        assert assignment.layer_choices(1) == (DATA, MODEL)

    def test_uniform_factory(self):
        assignment = HierarchicalAssignment.uniform(MODEL, 4, 5)
        assert assignment.is_uniform(MODEL)
        assert assignment.num_accelerators == 16

    def test_mismatched_level_sizes_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalAssignment.of([["dp", "dp"], ["dp"]])

    def test_empty_levels_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalAssignment(())

    def test_replace_level(self):
        assignment = self._make()
        replaced = assignment.replace_level(1, LayerAssignment.uniform(DATA, 3))
        assert replaced[1].is_uniform(DATA)
        # The original is unchanged (immutability).
        assert assignment.choice(1, 2) is MODEL

    def test_replace_level_validates_layer_count(self):
        with pytest.raises(ValueError):
            self._make().replace_level(0, LayerAssignment.uniform(DATA, 2))

    def test_replace_layer(self):
        assignment = self._make()
        replaced = assignment.replace_layer(0, (MODEL, MODEL))
        assert replaced.layer_choices(0) == (MODEL, MODEL)
        assert assignment.layer_choices(0) == (DATA, DATA)

    def test_replace_layer_validates_level_count(self):
        with pytest.raises(ValueError):
            self._make().replace_layer(0, (MODEL,))

    def test_str_mentions_every_level(self):
        text = str(self._make())
        assert "H1" in text and "H2" in text
