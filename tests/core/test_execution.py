"""Tests for the numerically-validated partitioned execution.

These are the strongest checks of the communication model: a training step
executed on two accelerator groups, each touching only its own tensor
slices, must (a) produce exactly the same numbers as the monolithic
computation and (b) exchange exactly the element counts the analytical
model predicts (Tables 1 and 2).
"""

import numpy as np
import pytest

from repro.core.communication import CommunicationModel
from repro.core.execution import CommunicationEvent, TwoGroupExecutor
from repro.core.parallelism import DATA, MODEL, LayerAssignment
from repro.core.tensors import model_tensors
from repro.nn.layers import Activation, ConvLayer, FCLayer
from repro.nn.model import build_model
from repro.nn.reference import ReferenceNetwork

BATCH = 8


def _fc_network():
    model = build_model(
        "fc-net",
        (1, 1, 12),
        [
            FCLayer(name="fc1", out_features=20, activation=Activation.RELU),
            FCLayer(name="fc2", out_features=16, activation=Activation.RELU),
            FCLayer(name="fc3", out_features=6, activation=Activation.NONE),
        ],
    )
    return ReferenceNetwork(model, seed=3)


def _conv_fc_network():
    model = build_model(
        "conv-fc-net",
        (10, 10, 4),
        [
            ConvLayer(name="conv1", out_channels=6, kernel_size=3, activation=Activation.RELU),
            ConvLayer(
                name="conv2",
                out_channels=8,
                kernel_size=3,
                padding=1,
                activation=Activation.RELU,
            ),
            FCLayer(name="fc1", out_features=10, activation=Activation.NONE),
        ],
    )
    return ReferenceNetwork(model, seed=5)


def _inputs(network, seed=11):
    x = network.random_batch(BATCH, seed=seed)
    rng = np.random.default_rng(seed + 1)
    out_features = network.model[-1].output_shape.elements
    grad_output = rng.standard_normal((BATCH, out_features))
    return x, grad_output


def _assert_matches_reference(network, assignment, x, grad_output):
    reference_states = network.training_step(x, grad_output)
    result = TwoGroupExecutor(network, assignment).run_step(x, grad_output)
    np.testing.assert_allclose(result.output, reference_states[-1].output, atol=1e-9)
    np.testing.assert_allclose(
        result.input_error, reference_states[0].grad_input, atol=1e-9
    )
    for index, state in enumerate(reference_states):
        np.testing.assert_allclose(result.gradients[index], state.grad_weight, atol=1e-9)
    return result


class TestNumericalEquivalenceFC:
    """Every dp/mp assignment of a small FC network reproduces the monolithic step."""

    @pytest.mark.parametrize("bits", range(8))
    def test_all_assignments(self, bits):
        network = _fc_network()
        x, grad_output = _inputs(network)
        assignment = LayerAssignment.from_codes(bits, 3)
        _assert_matches_reference(network, assignment, x, grad_output)


class TestNumericalEquivalenceConv:
    """Mixed conv + fc networks are reproduced too (channel-split model parallelism)."""

    @pytest.mark.parametrize(
        "choices",
        [
            ["dp", "dp", "dp"],
            ["mp", "mp", "mp"],
            ["dp", "dp", "mp"],
            ["dp", "mp", "dp"],
            ["mp", "dp", "mp"],
        ],
    )
    def test_selected_assignments(self, choices):
        network = _conv_fc_network()
        x, grad_output = _inputs(network, seed=23)
        assignment = LayerAssignment.of(choices)
        _assert_matches_reference(network, assignment, x, grad_output)


class TestCommunicationAccounting:
    """Measured exchanges equal the analytical model for every assignment."""

    @pytest.mark.parametrize("bits", range(8))
    def test_fc_network_totals(self, bits):
        network = _fc_network()
        x, grad_output = _inputs(network)
        assignment = LayerAssignment.from_codes(bits, 3)
        result = TwoGroupExecutor(network, assignment).run_step(x, grad_output)

        comm = CommunicationModel()
        tensors = model_tensors(network.model, BATCH)
        expected_bytes = comm.total_bytes(tensors, assignment)
        measured_bytes = result.total_elements() * comm.bytes_per_element
        assert measured_bytes == pytest.approx(expected_bytes)

    @pytest.mark.parametrize("bits", [0, 3, 5, 7])
    def test_per_layer_totals(self, bits):
        network = _fc_network()
        x, grad_output = _inputs(network)
        assignment = LayerAssignment.from_codes(bits, 3)
        result = TwoGroupExecutor(network, assignment).run_step(x, grad_output)

        comm = CommunicationModel()
        tensors = model_tensors(network.model, BATCH)
        breakdown = comm.layer_breakdown(tensors, assignment)
        measured = result.elements_by_layer()
        for record in breakdown:
            measured_bytes = measured.get(record.layer_name, 0.0) * comm.bytes_per_element
            assert measured_bytes == pytest.approx(record.total_bytes)

    def test_data_parallel_only_communicates_gradients(self):
        network = _fc_network()
        x, grad_output = _inputs(network)
        result = TwoGroupExecutor(network, LayerAssignment.uniform(DATA, 3)).run_step(
            x, grad_output
        )
        kinds = result.elements_by_kind()
        assert set(kinds) == {"intra-dp"}
        total_weights = network.model.total_weights
        assert kinds["intra-dp"] == pytest.approx(2 * total_weights)

    def test_model_parallel_only_communicates_forward_partial_sums_and_errors(self):
        network = _fc_network()
        x, grad_output = _inputs(network)
        result = TwoGroupExecutor(network, LayerAssignment.uniform(MODEL, 3)).run_step(
            x, grad_output
        )
        kinds = result.elements_by_kind()
        assert "intra-dp" not in kinds
        assert kinds["intra-mp"] > 0
        assert kinds["inter-backward"] > 0
        assert "inter-forward" not in kinds

    def test_dp_to_mp_boundary_moves_features_and_errors(self):
        network = _fc_network()
        x, grad_output = _inputs(network)
        assignment = LayerAssignment.of(["dp", "mp", "dp"])
        result = TwoGroupExecutor(network, assignment).run_step(x, grad_output)
        kinds = result.elements_by_kind()
        assert kinds.get("inter-forward", 0) > 0
        assert kinds.get("inter-backward", 0) > 0


class TestValidation:
    def test_layer_count_mismatch_rejected(self):
        network = _fc_network()
        with pytest.raises(ValueError):
            TwoGroupExecutor(network, LayerAssignment.uniform(DATA, 2))

    def test_negative_event_rejected(self):
        with pytest.raises(ValueError):
            CommunicationEvent("layer", "intra-dp", -1.0)
