"""Tests for tensor placement (shards, replication, memory footprints)."""

import pytest

from repro.core.baselines import data_parallelism, model_parallelism, one_weird_trick
from repro.core.hierarchical import HierarchicalPartitioner
from repro.core.placement import Interval, TensorPlacement, placement_summary
from repro.nn.model_zoo import alexnet, lenet_c


class TestInterval:
    def test_defaults_to_unit_interval(self):
        assert Interval().length == 1.0

    def test_halve_lower_and_upper(self):
        lower = Interval().halve(False)
        upper = Interval().halve(True)
        assert (lower.start, lower.stop) == (0.0, 0.5)
        assert (upper.start, upper.stop) == (0.5, 1.0)
        assert not lower.overlaps(upper)

    def test_repeated_halving(self):
        interval = Interval()
        for _ in range(4):
            interval = interval.halve(False)
        assert interval.length == pytest.approx(1 / 16)

    def test_slice_of(self):
        assert Interval(0.25, 0.5).slice_of(16) == slice(4, 8)

    def test_elements(self):
        assert Interval(0.0, 0.5).elements(100) == 50

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(0.5, 0.5)
        with pytest.raises(ValueError):
            Interval(-0.1, 0.5)


class TestPlacementStructure:
    @pytest.fixture(scope="class")
    def hypar_placement(self):
        model = alexnet()
        assignment = HierarchicalPartitioner(num_levels=4).partition(model, 256).assignment
        return TensorPlacement(model, assignment)

    def test_one_shard_per_accelerator_per_layer(self, hypar_placement):
        assert len(hypar_placement.accelerator_shards(0)) == 8
        assert len(hypar_placement.layer_shards("conv1")) == 16

    def test_every_shard_holds_one_sixteenth_of_the_work(self, hypar_placement):
        for layer in hypar_placement.model:
            for shard in hypar_placement.layer_shards(layer.index):
                fraction = shard.batch_interval.length * shard.weight_interval.length
                assert fraction == pytest.approx(1 / 16)

    def test_validation_passes(self, hypar_placement):
        hypar_placement.validate()

    def test_lookup_by_name_and_index_agree(self, hypar_placement):
        assert hypar_placement.shard(3, "fc1") == hypar_placement.shard(
            3, hypar_placement.model.layer_by_name("fc1").index
        )

    def test_out_of_range_accelerator_rejected(self, hypar_placement):
        with pytest.raises(ValueError):
            hypar_placement.shard(16, "conv1")

    def test_layer_count_mismatch_rejected(self):
        model = lenet_c()
        assignment = data_parallelism(alexnet(), 2)
        with pytest.raises(ValueError):
            TensorPlacement(model, assignment)


class TestDataParallelPlacement:
    @pytest.fixture(scope="class")
    def placement(self):
        model = lenet_c()
        return TensorPlacement(model, data_parallelism(model, 4))

    def test_weights_fully_replicated(self, placement):
        """Under pure dp every accelerator holds a full kernel copy."""
        for layer in placement.model:
            assert placement.weight_replication_factor(layer.index) == pytest.approx(16.0)
            for shard in placement.layer_shards(layer.index):
                assert shard.weight_fraction() == pytest.approx(1.0)

    def test_features_partitioned_exactly_once(self, placement):
        for layer in placement.model:
            assert placement.feature_out_replication_factor(layer.index) == pytest.approx(1.0)

    def test_batch_intervals_are_disjoint(self, placement):
        shards = placement.layer_shards(0)
        for a in shards:
            for b in shards:
                if a.accelerator != b.accelerator:
                    assert not a.batch_interval.overlaps(b.batch_interval)

    def test_validation_passes(self, placement):
        placement.validate()


class TestModelParallelPlacement:
    @pytest.fixture(scope="class")
    def placement(self):
        model = lenet_c()
        return TensorPlacement(model, model_parallelism(model, 4))

    def test_weights_partitioned_exactly_once(self, placement):
        for layer in placement.model:
            assert placement.weight_replication_factor(layer.index) == pytest.approx(1.0)

    def test_output_features_fully_replicated(self, placement):
        """Under pure mp every accelerator ends up with the full reduced output."""
        for layer in placement.model:
            assert placement.feature_out_replication_factor(layer.index) == pytest.approx(16.0)

    def test_weight_intervals_are_disjoint(self, placement):
        shards = placement.layer_shards("fc1")
        for a in shards:
            for b in shards:
                if a.accelerator != b.accelerator:
                    assert not a.weight_interval.overlaps(b.weight_interval)


class TestHybridPlacement:
    def test_trick_places_conv_by_batch_and_fc_by_weights(self):
        model = alexnet()
        placement = TensorPlacement(model, one_weird_trick(model, 4))
        conv_shard = placement.shard(5, "conv1")
        fc_shard = placement.shard(5, "fc1")
        assert conv_shard.weight_fraction() == pytest.approx(1.0)
        assert conv_shard.batch_interval.length == pytest.approx(1 / 16)
        assert fc_shard.weight_fraction() == pytest.approx(1 / 16)
        assert fc_shard.batch_interval.length == pytest.approx(1.0)

    def test_mixed_levels_split_both_dimensions(self):
        model = lenet_c()
        partitioner = HierarchicalPartitioner(num_levels=4)
        assignment = partitioner.partition(model, 256).assignment
        placement = TensorPlacement(model, assignment)
        placement.validate()
        fc1 = placement.shard(0, "fc1")
        # Lenet-c's fc1 is dp at H1 and mp at H2-H4 under the default search,
        # so both the batch and the weight dimensions end up partitioned.
        assert fc1.batch_interval.length < 1.0
        assert fc1.weight_interval.length < 1.0


class TestMemoryFootprint:
    def test_dp_replicates_weight_memory(self):
        model = lenet_c()
        dp = TensorPlacement(model, data_parallelism(model, 4))
        mp = TensorPlacement(model, model_parallelism(model, 4))
        dp_fp = dp.memory_footprint(256)[0]
        mp_fp = mp.memory_footprint(256)[0]
        assert dp_fp.weight_bytes == pytest.approx(model.total_weights * 4)
        assert mp_fp.weight_bytes == pytest.approx(model.total_weights * 4 / 16)

    def test_mp_replicates_activation_memory(self):
        model = lenet_c()
        dp = TensorPlacement(model, data_parallelism(model, 4))
        mp = TensorPlacement(model, model_parallelism(model, 4))
        assert mp.memory_footprint(256)[0].activation_bytes > dp.memory_footprint(256)[
            0
        ].activation_bytes

    def test_footprints_are_balanced(self):
        model = alexnet()
        assignment = HierarchicalPartitioner(num_levels=4).partition(model, 256).assignment
        placement = TensorPlacement(model, assignment)
        footprints = placement.memory_footprint(256)
        totals = [f.total_bytes for f in footprints]
        assert max(totals) == pytest.approx(min(totals))

    def test_vgg_hypar_placement_fits_in_hmc(self):
        """Paper feasibility: the searched placement of VGG-E fits in 8 GB cubes."""
        from repro.accelerator.hmc import HMCConfig
        from repro.nn.model_zoo import vgg_e

        model = vgg_e()
        assignment = HierarchicalPartitioner(num_levels=4).partition(model, 256).assignment
        placement = TensorPlacement(model, assignment)
        assert placement.fits_in_memory(256, HMCConfig().capacity)

    def test_invalid_arguments_rejected(self):
        model = lenet_c()
        placement = TensorPlacement(model, data_parallelism(model, 2))
        with pytest.raises(ValueError):
            placement.memory_footprint(0)
        with pytest.raises(ValueError):
            placement.fits_in_memory(256, 0)


class TestSummary:
    def test_summary_mentions_layers_and_footprint(self):
        model = lenet_c()
        placement = TensorPlacement(model, data_parallelism(model, 4))
        text = placement_summary(placement, 256)
        assert "Lenet-c" in text
        assert "conv1" in text and "fc2" in text
        assert "GiB" in text
