"""Tests for the single-accelerator execution model."""

import pytest

from repro.accelerator.accelerator import Accelerator
from repro.accelerator.hmc import HMCConfig
from repro.accelerator.pe_array import RowStationaryPU


class TestLayerExecution:
    def test_execution_fields(self, alexnet_model):
        accelerator = Accelerator()
        layer = alexnet_model.layer_by_name("conv3")
        execution = accelerator.execute_layer_pass(layer, macs=1e9, dram_words=1e6)
        assert execution.layer_name == "conv3"
        assert execution.compute_seconds > 0
        assert execution.dram_seconds > 0
        assert execution.energy > 0

    def test_pass_time_is_max_of_compute_and_dram(self, alexnet_model):
        accelerator = Accelerator()
        layer = alexnet_model.layer_by_name("conv3")
        execution = accelerator.execute_layer_pass(layer, macs=1e9, dram_words=1e6)
        assert execution.seconds == max(execution.compute_seconds, execution.dram_seconds)

    def test_energy_components_sum(self, alexnet_model):
        accelerator = Accelerator()
        layer = alexnet_model.layer_by_name("fc1")
        execution = accelerator.execute_layer_pass(layer, macs=1e8, dram_words=1e5)
        assert execution.energy == pytest.approx(
            execution.compute_energy + execution.sram_energy + execution.dram_energy
        )

    def test_more_pus_reduce_compute_time_but_not_energy(self, alexnet_model):
        layer = alexnet_model.layer_by_name("conv3")
        one_pu = Accelerator(num_pus=1).execute_layer_pass(layer, 1e9, 0)
        four_pus = Accelerator(num_pus=4).execute_layer_pass(layer, 1e9, 0)
        assert four_pus.compute_seconds == pytest.approx(one_pu.compute_seconds / 4)
        assert four_pus.compute_energy == pytest.approx(one_pu.compute_energy)

    def test_zero_work_costs_nothing(self, alexnet_model):
        accelerator = Accelerator()
        layer = alexnet_model.layer_by_name("conv1")
        execution = accelerator.execute_layer_pass(layer, 0, 0)
        assert execution.seconds == 0.0
        assert execution.energy == 0.0

    def test_negative_work_rejected(self, alexnet_model):
        accelerator = Accelerator()
        layer = alexnet_model.layer_by_name("conv1")
        with pytest.raises(ValueError):
            accelerator.execute_layer_pass(layer, -1, 0)
        with pytest.raises(ValueError):
            accelerator.execute_layer_pass(layer, 0, -1)

    def test_memory_bound_pass_detected(self, alexnet_model):
        """A pass streaming far more data than it computes is DRAM bound."""
        accelerator = Accelerator(hmc=HMCConfig(internal_bandwidth=1e9))
        layer = alexnet_model.layer_by_name("fc3")
        execution = accelerator.execute_layer_pass(layer, macs=1e3, dram_words=1e9)
        assert execution.dram_seconds > execution.compute_seconds
        assert execution.seconds == execution.dram_seconds


class TestValidation:
    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Accelerator(index=-1)

    def test_non_positive_pu_count_rejected(self):
        with pytest.raises(ValueError):
            Accelerator(num_pus=0)

    def test_custom_components_are_used(self):
        pu = RowStationaryPU(gops=10e9)
        accelerator = Accelerator(pu=pu)
        assert accelerator.pu.gops == 10e9
