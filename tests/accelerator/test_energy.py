"""Tests for the energy model (Section 6.1 constants)."""

import pytest

from repro.accelerator.energy import (
    ADD_ENERGY_PJ,
    DRAM_ACCESS_PJ,
    MULT_ENERGY_PJ,
    PAPER_ENERGY_MODEL,
    SRAM_ACCESS_PJ,
    EnergyModel,
)


class TestPaperConstants:
    def test_published_values(self):
        """The per-operation energies quoted in Section 6.1."""
        assert ADD_ENERGY_PJ == 0.9
        assert MULT_ENERGY_PJ == 3.7
        assert SRAM_ACCESS_PJ == 5.0
        assert DRAM_ACCESS_PJ == 640.0

    def test_paper_model_uses_them(self):
        assert PAPER_ENERGY_MODEL.add_pj == ADD_ENERGY_PJ
        assert PAPER_ENERGY_MODEL.dram_pj == DRAM_ACCESS_PJ

    def test_mac_energy_is_add_plus_mult(self):
        assert PAPER_ENERGY_MODEL.mac_pj == pytest.approx(4.6)


class TestComputeAndMemoryEnergy:
    def test_compute_energy_scaling(self):
        model = EnergyModel()
        assert model.compute_energy(1e12) == pytest.approx(4.6)

    def test_sram_energy_uses_accesses_per_mac(self):
        model = EnergyModel(sram_accesses_per_mac=2.0)
        assert model.sram_energy(1e9) == pytest.approx(1e9 * 2 * 5.0 * 1e-12)

    def test_dram_energy(self):
        model = EnergyModel()
        assert model.dram_energy(1e6) == pytest.approx(1e6 * 640e-12)

    def test_zero_work_is_free(self):
        model = EnergyModel()
        assert model.compute_energy(0) == 0.0
        assert model.sram_energy(0) == 0.0
        assert model.dram_energy(0) == 0.0

    @pytest.mark.parametrize("method", ["compute_energy", "sram_energy", "dram_energy"])
    def test_negative_work_rejected(self, method):
        model = EnergyModel()
        with pytest.raises(ValueError):
            getattr(model, method)(-1)


class TestCommunicationEnergy:
    def test_remote_word_costs_two_dram_accesses_plus_hops(self):
        model = EnergyModel()
        expected = (2 * model.dram_pj + 3 * model.link_hop_pj) * 1e-12
        assert model.communication_energy(1, hops=3) == pytest.approx(expected)

    def test_bytes_variant_divides_by_word_size(self):
        model = EnergyModel()
        assert model.communication_energy_bytes(400, hops=1) == pytest.approx(
            model.communication_energy(100, hops=1)
        )

    def test_energy_grows_with_hop_count(self):
        model = EnergyModel()
        assert model.communication_energy(1e6, hops=4) > model.communication_energy(
            1e6, hops=1
        )

    def test_remote_access_much_more_expensive_than_local_sram(self):
        """The 200x DRAM-vs-SRAM gap the paper motivates with (Section 1)."""
        model = EnergyModel()
        remote_per_word = model.communication_energy(1, hops=1)
        sram_per_word = model.sram_pj * 1e-12
        assert remote_per_word > 100 * sram_per_word

    def test_negative_inputs_rejected(self):
        model = EnergyModel()
        with pytest.raises(ValueError):
            model.communication_energy(-1)
        with pytest.raises(ValueError):
            model.communication_energy(1, hops=-1)


class TestValidation:
    def test_negative_constant_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(add_pj=-0.1)

    def test_model_is_frozen(self):
        with pytest.raises(AttributeError):
            EnergyModel().add_pj = 1.0
