"""Tests for the HMC configuration."""

import pytest

from repro.accelerator.hmc import HMC_CAPACITY, HMC_INTERNAL_BANDWIDTH, HMCConfig


class TestPaperParameters:
    def test_bandwidth_is_320_gb_per_second(self):
        assert HMC_INTERNAL_BANDWIDTH == pytest.approx(320e9)
        assert HMCConfig().internal_bandwidth == pytest.approx(320e9)

    def test_capacity_is_8_gb(self):
        assert HMC_CAPACITY == pytest.approx(8 * 2**30)
        assert HMCConfig().capacity == pytest.approx(8 * 2**30)


class TestDerivedQuantities:
    def test_vault_bandwidth(self):
        config = HMCConfig(internal_bandwidth=320e9, num_vaults=32)
        assert config.vault_bandwidth == pytest.approx(10e9)

    def test_access_time(self):
        config = HMCConfig(internal_bandwidth=320e9)
        assert config.access_time(320e9) == pytest.approx(1.0)
        assert config.access_time(0) == 0.0

    def test_access_time_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            HMCConfig().access_time(-1)

    def test_fits(self):
        config = HMCConfig()
        assert config.fits(1e9)
        assert not config.fits(100e9)

    def test_fits_rejects_negative(self):
        with pytest.raises(ValueError):
            HMCConfig().fits(-1)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"internal_bandwidth": 0},
            {"capacity": -1},
            {"num_vaults": 0},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HMCConfig(**kwargs)
