"""Tests for the accelerator-array configuration."""

import pytest

from repro.accelerator.array import (
    LINK_BANDWIDTH_BITS,
    PAPER_ARRAY,
    TOTAL_NETWORK_BANDWIDTH_BITS,
    ArrayConfig,
)


class TestPaperConfiguration:
    def test_sixteen_accelerators_four_levels(self):
        assert PAPER_ARRAY.num_accelerators == 16
        assert PAPER_ARRAY.num_levels == 4

    def test_link_bandwidth_is_1600_mbps(self):
        assert LINK_BANDWIDTH_BITS == pytest.approx(1600e6)
        assert PAPER_ARRAY.link_bandwidth_bytes == pytest.approx(200e6)

    def test_total_network_bandwidth_is_25_6_gbps(self):
        assert TOTAL_NETWORK_BANDWIDTH_BITS == pytest.approx(25.6e9)
        assert PAPER_ARRAY.total_network_bandwidth_bits == pytest.approx(25.6e9)


class TestDerivedQuantities:
    @pytest.mark.parametrize("count,levels", [(2, 1), (4, 2), (8, 3), (16, 4), (64, 6)])
    def test_num_levels(self, count, levels):
        assert ArrayConfig(num_accelerators=count).num_levels == levels

    def test_single_accelerator_has_zero_levels(self):
        assert ArrayConfig(num_accelerators=1).num_levels == 0

    def test_total_compute_scales_with_array_size_and_pus(self):
        small = ArrayConfig(num_accelerators=4, pus_per_accelerator=1)
        large = ArrayConfig(num_accelerators=16, pus_per_accelerator=2)
        assert large.total_compute_macs_per_second == pytest.approx(
            8 * small.total_compute_macs_per_second
        )

    def test_accelerators_instantiated_with_indices(self):
        array = ArrayConfig(num_accelerators=4)
        accelerators = array.accelerators()
        assert [a.index for a in accelerators] == [0, 1, 2, 3]
        assert all(a.num_pus == array.pus_per_accelerator for a in accelerators)

    def test_with_num_accelerators_preserves_other_fields(self):
        base = ArrayConfig(link_bandwidth_bits=800e6, pus_per_accelerator=2)
        resized = base.with_num_accelerators(32)
        assert resized.num_accelerators == 32
        assert resized.link_bandwidth_bits == 800e6
        assert resized.pus_per_accelerator == 2


class TestValidation:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            ArrayConfig(num_accelerators=12)

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            ArrayConfig(num_accelerators=0)

    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(ValueError):
            ArrayConfig(link_bandwidth_bits=0)

    def test_rejects_non_positive_pu_count(self):
        with pytest.raises(ValueError):
            ArrayConfig(pus_per_accelerator=0)
