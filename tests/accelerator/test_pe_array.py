"""Tests for the row-stationary processing-unit model."""

import pytest

from repro.accelerator.pe_array import (
    PE_COLS,
    PE_ROWS,
    PU_BUFFER_BYTES,
    PU_CLOCK_HZ,
    PU_GOPS,
    RowStationaryPU,
)


class TestPaperParameters:
    def test_pe_grid_is_12_by_14(self):
        assert PE_ROWS == 12
        assert PE_COLS == 14
        assert RowStationaryPU().num_pes == 168

    def test_buffer_is_108_kb(self):
        assert PU_BUFFER_BYTES == 108 * 1024

    def test_throughput_is_84_gops(self):
        assert PU_GOPS == pytest.approx(84.0e9)
        assert RowStationaryPU().peak_macs_per_second == pytest.approx(42.0e9)

    def test_clock_is_250_mhz(self):
        assert PU_CLOCK_HZ == pytest.approx(250e6)


class TestComputeTime:
    def test_time_scales_linearly_with_macs(self):
        pu = RowStationaryPU()
        assert pu.compute_time(2e9) == pytest.approx(2 * pu.compute_time(1e9))

    def test_zero_macs_take_zero_time(self):
        assert RowStationaryPU().compute_time(0) == 0.0

    def test_negative_macs_rejected(self):
        with pytest.raises(ValueError):
            RowStationaryPU().compute_time(-1)

    def test_peak_time_without_layer_context(self):
        pu = RowStationaryPU()
        assert pu.compute_time(42.0e9) == pytest.approx(1.0)

    def test_layer_context_never_speeds_up_execution(self, alexnet_model):
        pu = RowStationaryPU()
        for layer in alexnet_model:
            with_layer = pu.compute_time(1e9, layer)
            without_layer = pu.compute_time(1e9)
            assert with_layer >= without_layer

    def test_compute_cycles_consistent_with_time(self):
        pu = RowStationaryPU()
        assert pu.compute_cycles(42.0e9) == pytest.approx(pu.clock_hz)


class TestUtilization:
    def test_utilization_bounded(self, alexnet_model, vgg_a_model):
        pu = RowStationaryPU()
        for model in (alexnet_model, vgg_a_model):
            for layer in model:
                utilization = pu.utilization(layer)
                assert 0.0 < utilization <= 1.0

    def test_large_conv_layers_achieve_high_utilization(self, vgg_a_model):
        pu = RowStationaryPU()
        conv = vgg_a_model.layer_by_name("conv3_1")
        assert pu.utilization(conv) >= 0.9

    def test_fc_layers_have_reduced_utilization(self, alexnet_model):
        pu = RowStationaryPU()
        fc = alexnet_model.layer_by_name("fc1")
        conv = alexnet_model.layer_by_name("conv3")
        assert pu.utilization(fc) < pu.utilization(conv)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gops": 0},
            {"pe_rows": 0},
            {"pe_cols": -1},
            {"buffer_bytes": 0},
            {"clock_hz": 0},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RowStationaryPU(**kwargs)
