"""Tests for the scalability study (Figure 11)."""

import pytest

from repro.analysis.scalability import DEFAULT_ARRAY_SIZES, run_scalability_study
from repro.nn.model_zoo import get_model


@pytest.fixture(scope="module")
def study():
    """A reduced sweep (1-16 accelerators) on AlexNet keeps the test fast."""
    return run_scalability_study(
        model=get_model("AlexNet"), array_sizes=(1, 2, 4, 8, 16)
    )


class TestStructure:
    def test_default_sweep_covers_1_to_64(self):
        assert DEFAULT_ARRAY_SIZES == (1, 2, 4, 8, 16, 32, 64)

    def test_points_cover_every_size(self, study):
        assert study.array_sizes == (1, 2, 4, 8, 16)
        assert [p.num_accelerators for p in study.hypar.points] == [1, 2, 4, 8, 16]
        assert [p.num_accelerators for p in study.data_parallelism.points] == [1, 2, 4, 8, 16]

    def test_rows_are_flat_and_complete(self, study):
        rows = study.as_rows()
        assert len(rows) == 5
        for row in rows:
            assert set(row) == {
                "num_accelerators",
                "hypar_gain",
                "dp_gain",
                "hypar_comm_gb",
                "dp_comm_gb",
            }

    def test_sizes_are_deduplicated_and_sorted(self):
        study = run_scalability_study(
            model=get_model("Lenet-c"), array_sizes=(4, 1, 4, 2)
        )
        assert study.array_sizes == (1, 2, 4)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            run_scalability_study(model=get_model("Lenet-c"), array_sizes=(0, 2))


class TestScalingBehaviour:
    def test_single_accelerator_gain_is_one(self, study):
        rows = study.as_rows()
        assert rows[0]["hypar_gain"] == pytest.approx(1.0)
        assert rows[0]["dp_gain"] == pytest.approx(1.0)

    def test_single_accelerator_has_no_communication(self, study):
        rows = study.as_rows()
        assert rows[0]["hypar_comm_gb"] == 0.0
        assert rows[0]["dp_comm_gb"] == 0.0

    def test_hypar_gain_never_below_dp_gain(self, study):
        for row in study.as_rows():
            assert row["hypar_gain"] >= row["dp_gain"] - 1e-9

    def test_hypar_communication_always_at_most_dp(self, study):
        for row in study.as_rows():
            assert row["hypar_comm_gb"] <= row["dp_comm_gb"] + 1e-12

    def test_communication_grows_with_array_size(self, study):
        dp_comm = [row["dp_comm_gb"] for row in study.as_rows()]
        assert dp_comm == sorted(dp_comm)

    def test_hypar_scales_better_than_dp_at_sixteen(self, study):
        last = study.as_rows()[-1]
        assert last["hypar_gain"] > last["dp_gain"] * 1.5

    def test_hypar_keeps_scaling_where_dp_saturates(self):
        """Figure 11: DP's gain flattens well before HyPar's does."""
        study = run_scalability_study(
            model=get_model("VGG-A"), array_sizes=(1, 8, 16, 32)
        )
        rows = {row["num_accelerators"]: row for row in study.as_rows()}
        dp_growth = rows[32]["dp_gain"] / rows[8]["dp_gain"]
        hypar_growth = rows[32]["hypar_gain"] / rows[8]["hypar_gain"]
        assert hypar_growth > dp_growth
        assert dp_growth < 2.0  # DP is far from the ideal 4x over this range.

    def test_saturation_size_reporting(self, study):
        hypar_saturation = study.hypar.saturation_size(study.single_accelerator_seconds)
        dp_saturation = study.data_parallelism.saturation_size(
            study.single_accelerator_seconds
        )
        assert hypar_saturation >= dp_saturation
        assert hypar_saturation == 16
