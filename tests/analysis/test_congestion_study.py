"""Golden tests for the congestion study (analytic vs network engine).

``tests/analysis/golden_congestion.json`` pins the exact floats and the
strategy rankings of the default grid.  The load-bearing assertion is the
**ranking flip**: on the torus the analytic engine prefers Model
Parallelism over Data Parallelism for ``gpt_s-4`` while the
contention-aware network simulation reverses them.  If the flip ever
disappears, the network engine has stopped modelling the contention it
exists to model.  Regenerate the file deliberately with
``python scripts/generate_congestion_golden.py``.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.congestion_study import (
    DEFAULT_CONFIGS,
    CongestionConfig,
    run_congestion_study,
)
from repro.sweep import SweepEngine

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_congestion.json"


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def study():
    return run_congestion_study()


def _roundtrip(payload):
    return json.loads(json.dumps(payload))


class TestGoldenRows:
    def test_rows_are_byte_identical(self, study, golden):
        assert _roundtrip(study.as_rows()) == golden["rows"]

    def test_at_least_one_ranking_flip(self, study, golden):
        assert study.num_flips == golden["num_flips"]
        assert study.num_flips >= 1

    def test_the_flip_is_the_torus_gpt_point(self, study):
        flipped = [c for c in study.comparisons if c.flipped]
        assert [c.config.label() for c in flipped] == ["gpt_s-4/n4/torus/b256"]
        (comparison,) = flipped
        # Analytic prefers MP over DP; routed contention reverses them.
        analytic = comparison.ranking("analytic")
        network = comparison.ranking("network")
        assert analytic.index("Model Parallelism") < analytic.index("Data Parallelism")
        assert network.index("Data Parallelism") < network.index("Model Parallelism")

    def test_htree_controls_do_not_flip(self, study):
        for comparison in study.comparisons:
            if comparison.config.topology == "htree":
                assert not comparison.flipped

    def test_uncongested_htree_model_parallelism_is_bit_identical(self, study):
        """All-mp on the H tree has no contention and no overlap window, so
        the network engine must reproduce the analytic floats exactly."""
        for comparison in study.comparisons:
            if comparison.config.topology != "htree":
                continue
            assert (
                comparison.network_seconds["Model Parallelism"]
                == comparison.analytic_seconds["Model Parallelism"]
            )


class TestEngineIndependence:
    def test_parallel_engine_matches_serial_rows(self, study):
        with SweepEngine(workers=2) as engine:
            parallel = run_congestion_study(engine=engine)
        assert parallel.as_rows() == study.as_rows()

    def test_custom_config_subset(self):
        study = run_congestion_study([CongestionConfig("Lenet-c", 4, "htree", 64)])
        assert len(study.comparisons) == 1
        assert study.num_flips == 0

    def test_default_grid_is_the_pinned_one(self):
        assert [config.label() for config in DEFAULT_CONFIGS] == [
            "Lenet-c/n4/htree/b64",
            "gpt_s-4/n4/htree/b256",
            "gpt_s-4/n4/torus/b256",
            "AlexNet/n16/torus/b256",
        ]
