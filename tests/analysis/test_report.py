"""Tests for the reporting helpers."""

import math

import pytest

from repro.analysis.report import format_series, format_table, format_value, geometric_mean


class TestGeometricMean:
    def test_identical_values(self):
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geometric_mean([3.39]) == pytest.approx(3.39)

    def test_order_invariance(self):
        values = [0.5, 1.5, 3.0, 7.0]
        assert geometric_mean(values) == pytest.approx(geometric_mean(list(reversed(values))))

    def test_matches_logarithmic_definition(self):
        values = [0.3, 1.2, 9.7]
        expected = math.exp(sum(math.log(v) for v in values) / 3)
        assert geometric_mean(values) == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])


class TestFormatValue:
    def test_zero(self):
        assert format_value(0) == "0"

    def test_small_value_keeps_decimals(self):
        assert format_value(3.392) == "3.39"

    def test_medium_value(self):
        assert format_value(23.48) == "23.5"

    def test_large_value_has_no_decimals(self):
        assert format_value(157.3) == "157"


class TestFormatTable:
    def test_contains_rows_columns_and_gmean(self):
        rows = {
            "AlexNet": {"DP": 1.0, "HyPar": 3.05},
            "VGG-A": {"DP": 1.0, "HyPar": 4.97},
        }
        text = format_table("Figure 6", rows, ["DP", "HyPar"])
        assert "Figure 6" in text
        assert "AlexNet" in text and "VGG-A" in text
        assert "Gmean" in text

    def test_missing_cell_rendered_as_dash(self):
        rows = {"AlexNet": {"DP": 1.0}}
        text = format_table("t", rows, ["DP", "HyPar"])
        assert "-" in text

    def test_gmean_can_be_disabled(self):
        rows = {"AlexNet": {"DP": 1.0}}
        text = format_table("t", rows, ["DP"], add_gmean=False)
        assert "Gmean" not in text


class TestFormatSeries:
    def test_contains_xs_and_ys(self):
        text = format_series("Figure 11", [1, 2, 4], [1.0, 1.9, 3.5])
        assert "Figure 11" in text
        assert "1.90" in text or "1.9" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("t", [1, 2], [1.0])
