"""Tests for the topology comparison (Figure 12)."""

import pytest

from repro.analysis.topology_study import run_topology_study
from repro.nn.model_zoo import get_model


@pytest.fixture(scope="module")
def study():
    models = [get_model(name) for name in ("SCONV", "Lenet-c", "AlexNet", "VGG-A")]
    return run_topology_study(models=models)


class TestStructure:
    def test_one_comparison_per_model(self, study):
        assert [c.model_name for c in study.comparisons] == [
            "SCONV",
            "Lenet-c",
            "AlexNet",
            "VGG-A",
        ]

    def test_rows_have_both_topologies(self, study):
        for row in study.as_rows():
            assert set(row) == {"model", "torus", "h_tree"}
            assert row["torus"] > 0
            assert row["h_tree"] > 0


class TestFigure12Claims:
    def test_htree_never_slower_than_torus(self, study):
        for comparison in study.comparisons:
            assert comparison.htree_performance >= comparison.torus_performance - 1e-9

    def test_htree_strictly_better_for_communication_heavy_models(self, study):
        by_name = {c.model_name: c for c in study.comparisons}
        assert by_name["AlexNet"].htree_advantage > 1.0
        assert by_name["VGG-A"].htree_advantage > 1.0

    def test_gmeans_ordered(self, study):
        assert study.gmean_htree() > study.gmean_torus()

    def test_hypar_on_htree_still_beats_data_parallelism(self, study):
        """Both topology columns are normalised to DP on the H tree, so values
        above 1.0 mean HyPar wins even after the topology handicap."""
        by_name = {c.model_name: c for c in study.comparisons}
        assert by_name["AlexNet"].htree_performance > 1.0
        assert by_name["Lenet-c"].htree_performance > 1.0
