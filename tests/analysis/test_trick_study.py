"""Tests for the "one weird trick" comparison (Figure 13, Section 6.5.2)."""

import pytest

from repro.analysis.trick_study import (
    DEFAULT_CONFIGS,
    FOCUS_LAYERS,
    focus_subnetwork,
    run_trick_study,
)
from repro.nn.model_zoo import vgg_e


@pytest.fixture(scope="module")
def study():
    return run_trick_study()


class TestFocusSubnetwork:
    def test_conv5_slice_has_two_layers(self):
        sub = focus_subnetwork(vgg_e(), "conv5_4")
        assert len(sub) == 2
        assert sub.layer_names() == ["conv5_3", "conv5_4"]

    def test_fc3_slice_has_two_layers(self):
        sub = focus_subnetwork(vgg_e(), "fc3")
        assert sub.layer_names() == ["fc2", "fc3"]
        assert sub[1].output_shape.elements == 1000

    def test_slice_preserves_shapes(self):
        model = vgg_e()
        sub = focus_subnetwork(model, "conv5_4")
        original = model.layer_by_name("conv5_4")
        assert sub[1].weight_count == original.weight_count
        assert sub[1].output_shape == original.output_shape

    def test_first_layer_cannot_be_focused(self):
        with pytest.raises(ValueError):
            focus_subnetwork(vgg_e(), "conv1_1")


class TestConfigurations:
    def test_default_configs_match_figure13(self):
        labels = [f"{focus}-b{batch}-h{levels}" for focus, batch, levels in DEFAULT_CONFIGS]
        assert labels == [
            "conv5-b32-h2",
            "conv5-b32-h3",
            "conv5-b32-h4",
            "fc3-b4096-h2",
            "fc3-b4096-h3",
            "fc3-b4096-h4",
        ]

    def test_focus_layer_mapping(self):
        assert FOCUS_LAYERS == {"conv5": "conv5_4", "fc3": "fc3"}

    def test_unknown_focus_rejected(self):
        with pytest.raises(KeyError):
            run_trick_study(configs=[("conv9", 32, 2)])


class TestFigure13Claims:
    def test_six_comparisons(self, study):
        assert len(study.comparisons) == 6

    def test_hypar_never_loses_to_the_trick(self, study):
        for comparison in study.comparisons:
            assert comparison.performance_ratio >= 1.0 - 1e-9
            assert comparison.energy_ratio >= 1.0 - 1e-9

    def test_gmean_performance_advantage(self, study):
        """The paper reports a 1.62x gmean advantage; we require a material one."""
        assert study.gmean_performance() > 1.05

    def test_gmean_energy_advantage(self, study):
        assert study.gmean_energy() >= 1.0

    def test_max_at_least_gmean(self, study):
        assert study.max_performance() >= study.gmean_performance()

    def test_conv5_advantage_grows_with_hierarchy_depth(self, study):
        """Deeper hierarchies shrink the per-group batch, so the trick's
        always-dp choice for conv5 gets progressively worse."""
        conv5 = [c for c in study.comparisons if c.label.startswith("conv5")]
        ratios = [c.performance_ratio for c in sorted(conv5, key=lambda c: c.num_levels)]
        assert ratios == sorted(ratios)
        assert ratios[-1] > ratios[0]

    def test_rows_expose_all_configs(self, study):
        rows = study.as_rows()
        assert len(rows) == 6
        assert all({"config", "performance", "energy_efficiency"} == set(row) for row in rows)
