"""Tests for the sensitivity studies (batch size, link bandwidth, precision)."""

import pytest

from repro.accelerator.array import ArrayConfig
from repro.analysis.sensitivity import (
    batch_size_sensitivity,
    link_bandwidth_sensitivity,
    precision_sensitivity,
)
from repro.nn.model_zoo import get_model


@pytest.fixture(scope="module")
def small_array():
    return ArrayConfig(num_accelerators=4)


class TestBatchSizeSensitivity:
    @pytest.fixture(scope="class")
    def study(self):
        return batch_size_sensitivity(
            model=get_model("AlexNet"),
            batch_sizes=(32, 256, 1024),
            array=ArrayConfig(num_accelerators=4),
        )

    def test_one_point_per_batch_size(self, study):
        assert study.parameters() == [32.0, 256.0, 1024.0]
        assert study.name == "batch-size"
        assert study.model_name == "AlexNet"

    def test_hypar_never_loses(self, study):
        for point in study.points:
            assert point.hypar_speedup >= 1.0 - 1e-9
            assert point.hypar_energy_efficiency >= 1.0 - 1e-9

    def test_communication_reduction_positive(self, study):
        for point in study.points:
            assert point.communication_reduction >= 1.0

    def test_rows_have_expected_keys(self, study):
        for row in study.as_rows():
            assert set(row) == {"parameter", "speedup", "energy_efficiency", "comm_reduction"}

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            batch_size_sensitivity(get_model("Lenet-c"), batch_sizes=(0,))


class TestLinkBandwidthSensitivity:
    @pytest.fixture(scope="class")
    def study(self):
        return link_bandwidth_sensitivity(
            model=get_model("AlexNet"),
            link_bandwidths_bits=(400e6, 1600e6, 12800e6),
        )

    def test_speedup_decreases_with_faster_links(self, study):
        """The faster the interconnect, the less the communication savings matter."""
        speedups = study.speedups()
        assert speedups == sorted(speedups, reverse=True)

    def test_slow_links_amplify_hypar(self, study):
        by_bandwidth = {point.parameter: point for point in study.points}
        assert by_bandwidth[400e6].hypar_speedup > by_bandwidth[12800e6].hypar_speedup

    def test_hypar_never_loses(self, study):
        for point in study.points:
            assert point.hypar_speedup >= 1.0 - 1e-9

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            link_bandwidth_sensitivity(get_model("Lenet-c"), link_bandwidths_bits=(0,))


class TestPrecisionSensitivity:
    @pytest.fixture(scope="class")
    def study(self):
        return precision_sensitivity(
            model=get_model("AlexNet"),
            bytes_per_element=(2, 4),
            array=ArrayConfig(num_accelerators=4),
        )

    def test_lower_precision_reduces_but_does_not_remove_the_gap(self, study):
        by_precision = {point.parameter: point for point in study.points}
        assert by_precision[2.0].hypar_speedup <= by_precision[4.0].hypar_speedup + 1e-9
        assert by_precision[2.0].hypar_speedup >= 1.0 - 1e-9

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError):
            precision_sensitivity(get_model("Lenet-c"), bytes_per_element=(0,))
