"""Tests for the Figures 5-8 experiment driver."""

import pytest

from repro.accelerator.array import ArrayConfig
from repro.analysis.experiments import (
    DATA_PARALLELISM,
    HYPAR,
    MODEL_PARALLELISM,
    ONE_WEIRD_TRICK,
    ExperimentRunner,
)
from repro.core.parallelism import DATA, MODEL
from repro.nn.model_zoo import get_model


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


@pytest.fixture(scope="module")
def small_runner():
    """Four accelerators and a small batch keep sweep-style tests cheap."""
    return ExperimentRunner(array=ArrayConfig(num_accelerators=4), batch_size=64)


@pytest.fixture(scope="module")
def alexnet_comparison(runner):
    return runner.compare(get_model("AlexNet"))


class TestOptimizedParallelism:
    def test_figure5_structure(self, runner):
        result = runner.optimized_parallelism(get_model("AlexNet"))
        assert result.num_levels == 4
        assert result.assignment.num_layers == 8

    def test_figure5_sconv_all_dp(self, runner):
        result = runner.optimized_parallelism(get_model("SCONV"))
        assert result.assignment.is_uniform(DATA)

    def test_figure5_sfc_mostly_mp(self, runner):
        result = runner.optimized_parallelism(get_model("SFC"))
        total = result.assignment.num_layers * result.assignment.num_levels
        mp_count = sum(level.count(MODEL) for level in result.assignment)
        assert mp_count >= total - 1


class TestStrategyAssignments:
    def test_three_strategies_by_default(self, runner):
        assignments = runner.strategy_assignments(get_model("Lenet-c"))
        assert set(assignments) == {MODEL_PARALLELISM, DATA_PARALLELISM, HYPAR}

    def test_trick_included_on_request(self):
        runner = ExperimentRunner(include_trick=True)
        assignments = runner.strategy_assignments(get_model("Lenet-c"))
        assert ONE_WEIRD_TRICK in assignments

    def test_defaults_are_uniform(self, runner):
        assignments = runner.strategy_assignments(get_model("Lenet-c"))
        assert assignments[DATA_PARALLELISM].is_uniform(DATA)
        assert assignments[MODEL_PARALLELISM].is_uniform(MODEL)


class TestModelComparison:
    def test_baseline_is_data_parallelism(self, alexnet_comparison):
        assert alexnet_comparison.baseline.strategy_name == DATA_PARALLELISM

    def test_normalized_performance_of_baseline_is_one(self, alexnet_comparison):
        perf = alexnet_comparison.normalized_performance()
        assert perf[DATA_PARALLELISM] == pytest.approx(1.0)

    def test_hypar_outperforms_data_parallelism_on_alexnet(self, alexnet_comparison):
        perf = alexnet_comparison.normalized_performance()
        assert perf[HYPAR] > 1.5

    def test_model_parallelism_is_worst_on_alexnet(self, alexnet_comparison):
        perf = alexnet_comparison.normalized_performance()
        assert perf[MODEL_PARALLELISM] < perf[DATA_PARALLELISM]
        assert perf[MODEL_PARALLELISM] < perf[HYPAR]

    def test_hypar_is_at_least_as_energy_efficient(self, alexnet_comparison):
        energy = alexnet_comparison.normalized_energy_efficiency()
        assert energy[HYPAR] >= 1.0

    def test_communication_ordering_on_alexnet(self, alexnet_comparison):
        comm = alexnet_comparison.communication_gb()
        assert comm[HYPAR] < comm[DATA_PARALLELISM] < comm[MODEL_PARALLELISM]


class TestEvaluationTable:
    @pytest.fixture(scope="class")
    def table(self, small_runner):
        models = [get_model(name) for name in ("SFC", "SCONV", "Lenet-c", "AlexNet")]
        return small_runner.run(models)

    def test_models_listed_in_order(self, table):
        assert table.models() == ["SFC", "SCONV", "Lenet-c", "AlexNet"]

    def test_performance_table_covers_all_strategies(self, table):
        perf = table.performance()
        for row in perf.values():
            assert set(row) == {MODEL_PARALLELISM, DATA_PARALLELISM, HYPAR}

    def test_hypar_never_loses_to_data_parallelism(self, table):
        for row in table.performance().values():
            assert row[HYPAR] >= row[DATA_PARALLELISM] - 1e-9

    def test_gmean_of_hypar_above_one(self, table):
        assert table.gmean(table.performance(), HYPAR) >= 1.0

    def test_format_contains_three_figures(self, table):
        text = table.format()
        assert "Figure 6" in text
        assert "Figure 7" in text
        assert "Figure 8" in text
        assert "Gmean" in text


class TestPaperHeadlineNumbers:
    """The headline claims of the abstract, checked loosely against the
    simulated sixteen-accelerator array (shape, not exact values)."""

    @pytest.fixture(scope="class")
    def headline_table(self, runner):
        names = ("SCONV", "Lenet-c", "AlexNet", "VGG-A", "VGG-B")
        return runner.run([get_model(name) for name in names])

    def test_hypar_gmean_performance_gain_in_paper_range(self, headline_table):
        """The paper reports a 3.39x gmean over ten networks; on this subset we
        require a clearly material gain (>1.5x) without matching exactly."""
        gmean = headline_table.gmean(headline_table.performance(), HYPAR)
        assert gmean > 1.5

    def test_hypar_gmean_energy_gain_above_one(self, headline_table):
        gmean = headline_table.gmean(headline_table.energy_efficiency(), HYPAR)
        assert gmean > 1.0

    def test_model_parallelism_is_the_worst_choice_overall(self, headline_table):
        perf = headline_table.performance()
        gmean_mp = headline_table.gmean(perf, MODEL_PARALLELISM)
        gmean_dp = headline_table.gmean(perf, DATA_PARALLELISM)
        gmean_hypar = headline_table.gmean(perf, HYPAR)
        assert gmean_mp < gmean_dp <= gmean_hypar
