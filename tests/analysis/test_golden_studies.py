"""Golden byte-identity tests for every figure study.

``tests/analysis/golden_studies.json`` pins the *exact* floats of all eight
`repro.analysis` studies (Figures 6-13 plus the sensitivity sweeps) as
produced by the pre-sweep-engine serial loops.  Each test recomputes one
study through the shared sweep engine and compares with strict equality --
any drift in the cost model, the search, the simulator or the sweep
orchestration fails here.  Regenerate the file deliberately with
``python scripts/generate_study_goldens.py`` when an output change is
intended.

The default engine is serial; ``TestParallelEngineMatchesGoldens`` repeats
two representative studies with a two-worker process pool to pin the
engine's serial/parallel byte-identity at the figure level as well.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.experiments import ExperimentRunner
from repro.analysis.exploration import ParallelismExplorer
from repro.analysis.scalability import run_scalability_study
from repro.analysis.sensitivity import (
    batch_size_sensitivity,
    link_bandwidth_sensitivity,
    precision_sensitivity,
)
from repro.analysis.topology_study import run_topology_study
from repro.analysis.trick_study import run_trick_study
from repro.sweep import SweepEngine

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_studies.json"


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def _roundtrip(payload):
    """Normalise tuples/ints the way the golden JSON stores them."""
    return json.loads(json.dumps(payload))


class TestFigures6To8:
    @pytest.fixture(scope="class")
    def evaluation(self):
        return ExperimentRunner().run()

    def test_performance_is_byte_identical(self, evaluation, golden):
        assert _roundtrip(evaluation.performance()) == golden["figures_6_to_8"]["performance"]

    def test_energy_efficiency_is_byte_identical(self, evaluation, golden):
        assert (
            _roundtrip(evaluation.energy_efficiency())
            == golden["figures_6_to_8"]["energy_efficiency"]
        )

    def test_communication_is_byte_identical(self, evaluation, golden):
        assert (
            _roundtrip(evaluation.communication())
            == golden["figures_6_to_8"]["communication_gb"]
        )

    def test_formatted_tables_are_byte_identical(self, evaluation, golden):
        assert evaluation.format() == golden["figures_6_to_8"]["formatted"]


class TestExplorationFigures:
    @pytest.mark.parametrize(
        "golden_key,explore",
        [
            ("figure_9_lenet", lambda explorer: explorer.explore_lenet()),
            ("figure_10_vgg_a", lambda explorer: explorer.explore_vgg_a()),
        ],
    )
    def test_sweep_points_are_byte_identical(self, golden, golden_key, explore):
        expected = golden[golden_key]
        result = explore(ParallelismExplorer())
        assert result.model_name == expected["model_name"]
        assert [list(position) for position in result.free_positions] == expected[
            "free_positions"
        ]
        assert result.hypar_performance == expected["hypar_performance"]
        assert [point.bits for point in result.points] == [
            point["bits"] for point in expected["points"]
        ]
        assert [point.normalized_performance for point in result.points] == [
            point["normalized_performance"] for point in expected["points"]
        ]
        assert result.peak.bits == expected["peak_bits"]
        assert result.hypar_is_peak == expected["hypar_is_peak"]


class TestScalabilityFigure:
    def test_rows_are_byte_identical(self, golden):
        study = run_scalability_study()
        expected = golden["figure_11_scalability"]
        assert study.model_name == expected["model_name"]
        assert study.single_accelerator_seconds == expected["single_accelerator_seconds"]
        assert _roundtrip(study.as_rows()) == expected["rows"]


class TestTopologyFigure:
    def test_rows_and_gmeans_are_byte_identical(self, golden):
        study = run_topology_study()
        expected = golden["figure_12_topology"]
        assert _roundtrip(study.as_rows()) == expected["rows"]
        assert study.gmean_htree() == expected["gmean_htree"]
        assert study.gmean_torus() == expected["gmean_torus"]


class TestTrickFigure:
    def test_rows_and_gmeans_are_byte_identical(self, golden):
        study = run_trick_study()
        expected = golden["figure_13_trick"]
        assert _roundtrip(study.as_rows()) == expected["rows"]
        assert study.gmean_performance() == expected["gmean_performance"]
        assert study.gmean_energy() == expected["gmean_energy"]


class TestSensitivityStudies:
    @pytest.mark.parametrize(
        "golden_key,run",
        [
            ("sensitivity_batch_size", batch_size_sensitivity),
            ("sensitivity_link_bandwidth", link_bandwidth_sensitivity),
            ("sensitivity_precision", precision_sensitivity),
        ],
    )
    def test_rows_are_byte_identical(self, golden, golden_key, run):
        assert _roundtrip(run().as_rows()) == golden[golden_key]["rows"]


class TestParallelEngineMatchesGoldens:
    """The process-parallel engine reproduces the serial figures exactly."""

    def test_figures_6_to_8_with_two_workers(self, golden):
        with SweepEngine(workers=2) as engine:
            evaluation = ExperimentRunner().run(engine=engine)
        assert _roundtrip(evaluation.performance()) == golden["figures_6_to_8"]["performance"]
        assert evaluation.format() == golden["figures_6_to_8"]["formatted"]

    def test_figure_9_with_two_workers(self, golden):
        expected = golden["figure_9_lenet"]
        with SweepEngine(workers=2) as engine:
            result = ParallelismExplorer(engine=engine).explore_lenet()
        assert result.hypar_performance == expected["hypar_performance"]
        assert [point.normalized_performance for point in result.points] == [
            point["normalized_performance"] for point in expected["points"]
        ]
