"""Shared pytest fixtures for the HyPar reproduction test suite."""

from __future__ import annotations

import os
import sys

import pytest

# Allow the test suite to run from a source checkout even when the package
# has not been installed (e.g. fully offline environments).
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.accelerator.array import ArrayConfig  # noqa: E402
from repro.core.communication import CommunicationModel  # noqa: E402
from repro.core.hierarchical import HierarchicalPartitioner  # noqa: E402
from repro.core.partitioner import TwoWayPartitioner  # noqa: E402
from repro.nn.layers import ConvLayer, FCLayer, PoolSpec  # noqa: E402
from repro.nn.model import build_model  # noqa: E402
from repro.nn.model_zoo import alexnet, lenet_c, sconv, sfc, vgg_a  # noqa: E402


@pytest.fixture(scope="session")
def lenet_model():
    """The four-layer Lenet-c network (small, cheap to partition and simulate)."""
    return lenet_c()


@pytest.fixture(scope="session")
def alexnet_model():
    """AlexNet: five conv + three fc layers."""
    return alexnet()


@pytest.fixture(scope="session")
def vgg_a_model():
    """VGG-A: the network used by the paper's scalability and sweep studies."""
    return vgg_a()


@pytest.fixture(scope="session")
def sfc_model():
    """The all-fully-connected extreme case."""
    return sfc()


@pytest.fixture(scope="session")
def sconv_model():
    """The all-convolutional extreme case."""
    return sconv()


@pytest.fixture(scope="session")
def tiny_model():
    """A tiny two-layer conv+fc model for exhaustive-search comparisons."""
    return build_model(
        "tiny",
        (8, 8, 3),
        [
            ConvLayer(name="conv", out_channels=4, kernel_size=3, pool=PoolSpec(2)),
            FCLayer(name="fc", out_features=10),
        ],
    )


@pytest.fixture
def communication_model():
    return CommunicationModel()


@pytest.fixture
def two_way_partitioner():
    return TwoWayPartitioner()


@pytest.fixture
def hierarchical_partitioner():
    """The paper's default configuration: four levels (sixteen accelerators)."""
    return HierarchicalPartitioner(num_levels=4)


@pytest.fixture(scope="session")
def paper_array():
    """The paper's sixteen-accelerator array configuration."""
    return ArrayConfig()


@pytest.fixture(scope="session")
def small_array():
    """A four-accelerator array, cheap enough for sweeping in tests."""
    return ArrayConfig(num_accelerators=4)
