"""Tests for feature-map shape arithmetic."""

import pytest

from repro.nn.shapes import (
    FeatureMapShape,
    ShapeError,
    conv_output_shape,
    pool_output_shape,
)


class TestFeatureMapShape:
    def test_elements(self):
        assert FeatureMapShape(4, 5, 3).elements == 60

    def test_vector_shape_elements(self):
        assert FeatureMapShape(1, 1, 784).elements == 784

    def test_is_vector_true_for_flat_shape(self):
        assert FeatureMapShape(1, 1, 10).is_vector

    def test_is_vector_false_for_spatial_shape(self):
        assert not FeatureMapShape(3, 3, 10).is_vector

    def test_flattened_preserves_element_count(self):
        shape = FeatureMapShape(7, 7, 64)
        assert shape.flattened().elements == shape.elements
        assert shape.flattened().is_vector

    def test_rejects_zero_dimension(self):
        with pytest.raises(ShapeError):
            FeatureMapShape(0, 5, 3)

    def test_rejects_negative_channels(self):
        with pytest.raises(ShapeError):
            FeatureMapShape(5, 5, -1)

    def test_rejects_non_integer_dimension(self):
        with pytest.raises(ShapeError):
            FeatureMapShape(5.0, 5, 3)

    def test_shapes_are_hashable_and_comparable(self):
        assert FeatureMapShape(2, 2, 2) == FeatureMapShape(2, 2, 2)
        assert len({FeatureMapShape(2, 2, 2), FeatureMapShape(2, 2, 2)}) == 1


class TestConvOutputShape:
    def test_basic_valid_convolution(self):
        out = conv_output_shape(FeatureMapShape(28, 28, 1), kernel_size=5, out_channels=20)
        assert out == FeatureMapShape(24, 24, 20)

    def test_same_padding_preserves_spatial_size(self):
        out = conv_output_shape(
            FeatureMapShape(32, 32, 3), kernel_size=3, out_channels=16, padding=1
        )
        assert (out.height, out.width) == (32, 32)

    def test_stride_reduces_spatial_size(self):
        out = conv_output_shape(
            FeatureMapShape(227, 227, 3), kernel_size=11, out_channels=96, stride=4
        )
        assert (out.height, out.width) == (55, 55)

    def test_one_by_one_convolution(self):
        out = conv_output_shape(FeatureMapShape(14, 14, 512), kernel_size=1, out_channels=256)
        assert out == FeatureMapShape(14, 14, 256)

    def test_kernel_larger_than_input_raises(self):
        with pytest.raises(ShapeError):
            conv_output_shape(FeatureMapShape(4, 4, 3), kernel_size=5, out_channels=8)

    def test_rejects_non_positive_out_channels(self):
        with pytest.raises(ShapeError):
            conv_output_shape(FeatureMapShape(8, 8, 3), kernel_size=3, out_channels=0)

    def test_rejects_negative_padding(self):
        with pytest.raises(ShapeError):
            conv_output_shape(
                FeatureMapShape(8, 8, 3), kernel_size=3, out_channels=8, padding=-1
            )

    def test_rejects_zero_stride(self):
        with pytest.raises(ShapeError):
            conv_output_shape(
                FeatureMapShape(8, 8, 3), kernel_size=3, out_channels=8, stride=0
            )


class TestPoolOutputShape:
    def test_non_overlapping_pooling_halves_dimensions(self):
        out = pool_output_shape(FeatureMapShape(24, 24, 20), pool_size=2)
        assert out == FeatureMapShape(12, 12, 20)

    def test_pooling_keeps_channel_count(self):
        out = pool_output_shape(FeatureMapShape(8, 8, 50), pool_size=2)
        assert out.channels == 50

    def test_overlapping_pooling(self):
        out = pool_output_shape(FeatureMapShape(55, 55, 96), pool_size=3, stride=2)
        assert (out.height, out.width) == (27, 27)

    def test_ceil_mode_rounds_up(self):
        floor = pool_output_shape(FeatureMapShape(32, 32, 32), pool_size=3, stride=2)
        ceil = pool_output_shape(
            FeatureMapShape(32, 32, 32), pool_size=3, stride=2, ceil_mode=True
        )
        assert floor == FeatureMapShape(15, 15, 32)
        assert ceil == FeatureMapShape(16, 16, 32)

    def test_pool_covering_whole_map(self):
        out = pool_output_shape(FeatureMapShape(4, 4, 10), pool_size=4)
        assert out == FeatureMapShape(1, 1, 10)

    def test_pool_larger_than_input_raises(self):
        with pytest.raises(ShapeError):
            pool_output_shape(FeatureMapShape(2, 2, 10), pool_size=4)

    def test_rejects_zero_pool_size(self):
        with pytest.raises(ShapeError):
            pool_output_shape(FeatureMapShape(8, 8, 3), pool_size=0)

    def test_rejects_negative_stride(self):
        with pytest.raises(ShapeError):
            pool_output_shape(FeatureMapShape(8, 8, 3), pool_size=2, stride=-1)


class TestMergeShapes:
    def test_add_merge_requires_identical_shapes(self):
        from repro.nn.shapes import MergeOp, add_merge_shape, merge_shape

        shape = FeatureMapShape(8, 8, 16)
        assert add_merge_shape([shape, shape]) == shape
        assert merge_shape(MergeOp.ADD, [shape, shape, shape]) == shape
        with pytest.raises(ShapeError):
            add_merge_shape([shape, FeatureMapShape(8, 8, 32)])

    def test_concat_merge_sums_channels(self):
        from repro.nn.shapes import MergeOp, concat_merge_shape, merge_shape

        merged = concat_merge_shape(
            [FeatureMapShape(8, 8, 16), FeatureMapShape(8, 8, 32)]
        )
        assert merged == FeatureMapShape(8, 8, 48)
        assert merge_shape(
            MergeOp.CONCAT, [FeatureMapShape(1, 1, 5), FeatureMapShape(1, 1, 7)]
        ) == FeatureMapShape(1, 1, 12)

    def test_concat_merge_requires_matching_spatial_dims(self):
        from repro.nn.shapes import concat_merge_shape

        with pytest.raises(ShapeError):
            concat_merge_shape(
                [FeatureMapShape(8, 8, 16), FeatureMapShape(4, 4, 16)]
            )

    def test_empty_merge_raises(self):
        from repro.nn.shapes import add_merge_shape, concat_merge_shape

        with pytest.raises(ShapeError):
            add_merge_shape([])
        with pytest.raises(ShapeError):
            concat_merge_shape([])

    def test_merge_op_parse(self):
        from repro.nn.shapes import MergeOp

        assert MergeOp.parse("add") is MergeOp.ADD
        assert MergeOp.parse("CONCAT") is MergeOp.CONCAT
        assert MergeOp.parse(MergeOp.ADD) is MergeOp.ADD
        with pytest.raises(ValueError):
            MergeOp.parse("stack")
