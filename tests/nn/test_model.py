"""Tests for the DNNModel container and shape inference."""

import pytest

from repro.nn.layers import ConvLayer, FCLayer, PoolSpec
from repro.nn.model import build_model
from repro.nn.shapes import FeatureMapShape, ShapeError


def _small_model():
    return build_model(
        "small",
        (28, 28, 1),
        [
            ConvLayer(name="conv1", out_channels=20, kernel_size=5, pool=PoolSpec(2)),
            ConvLayer(name="conv2", out_channels=50, kernel_size=5, pool=PoolSpec(2)),
            FCLayer(name="fc1", out_features=500),
            FCLayer(name="fc2", out_features=10),
        ],
    )


class TestBuildModel:
    def test_number_of_weighted_layers(self):
        assert _small_model().num_weighted_layers == 4

    def test_layer_indices_are_sequential(self):
        model = _small_model()
        assert [layer.index for layer in model] == [0, 1, 2, 3]

    def test_shapes_chain_through_layers(self):
        model = _small_model()
        # conv1: 28x28x1 -> 24x24x20 -> pool -> 12x12x20
        assert model[0].output_shape == FeatureMapShape(24, 24, 20)
        assert model[0].post_pool_shape == FeatureMapShape(12, 12, 20)
        # conv2 consumes conv1's post-pool shape.
        assert model[1].input_shape == FeatureMapShape(12, 12, 20)
        assert model[1].output_shape == FeatureMapShape(8, 8, 50)

    def test_fc_input_is_flattened(self):
        model = _small_model()
        assert model[2].input_shape.is_vector
        assert model[2].input_shape.elements == 4 * 4 * 50

    def test_weight_counts(self):
        model = _small_model()
        assert model[0].weight_count == 5 * 5 * 1 * 20
        assert model[1].weight_count == 5 * 5 * 20 * 50
        assert model[2].weight_count == 4 * 4 * 50 * 500
        assert model[3].weight_count == 500 * 10

    def test_total_weights_is_sum_of_layers(self):
        model = _small_model()
        assert model.total_weights == sum(layer.weight_count for layer in model)

    def test_input_shape_accepts_tuple(self):
        model = build_model("t", (8, 8, 3), [FCLayer(name="fc", out_features=4)])
        assert model.input_shape == FeatureMapShape(8, 8, 3)

    def test_input_shape_accepts_feature_map_shape(self):
        model = build_model(
            "t", FeatureMapShape(8, 8, 3), [FCLayer(name="fc", out_features=4)]
        )
        assert model.input_shape == FeatureMapShape(8, 8, 3)

    def test_duplicate_layer_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate layer name"):
            build_model(
                "dup",
                (8, 8, 3),
                [FCLayer(name="fc", out_features=4), FCLayer(name="fc", out_features=2)],
            )

    def test_empty_model_rejected(self):
        with pytest.raises(ShapeError):
            build_model("empty", (8, 8, 3), [])

    def test_invalid_shape_propagates(self):
        with pytest.raises(ShapeError):
            build_model(
                "bad",
                (4, 4, 3),
                [ConvLayer(name="conv", out_channels=8, kernel_size=7)],
            )


class TestDNNModelAccessors:
    def test_len_and_iteration(self):
        model = _small_model()
        assert len(model) == 4
        assert len(list(model)) == 4

    def test_getitem(self):
        model = _small_model()
        assert model[0].name == "conv1"
        assert model[-1].name == "fc2"

    def test_layer_by_name(self):
        model = _small_model()
        assert model.layer_by_name("conv2").index == 1

    def test_layer_by_name_missing_raises_keyerror(self):
        with pytest.raises(KeyError):
            _small_model().layer_by_name("does-not-exist")

    def test_layer_names(self):
        assert _small_model().layer_names() == ["conv1", "conv2", "fc1", "fc2"]

    def test_conv_and_fc_counts(self):
        model = _small_model()
        assert model.num_conv_layers == 2
        assert model.num_fc_layers == 2

    def test_is_conv_is_fc_flags(self):
        model = _small_model()
        assert model[0].is_conv and not model[0].is_fc
        assert model[3].is_fc and not model[3].is_conv

    def test_total_macs_scales_with_batch(self):
        model = _small_model()
        assert model.total_macs(64) == 2 * model.total_macs(32)

    def test_total_macs_rejects_non_positive_batch(self):
        with pytest.raises(ValueError):
            _small_model().total_macs(0)

    def test_summary_mentions_every_layer(self):
        summary = _small_model().summary()
        for name in ("conv1", "conv2", "fc1", "fc2"):
            assert name in summary


class TestDagModels:
    def _residual_model(self):
        from repro.nn.shapes import MergeOp

        return build_model(
            "residual",
            (8, 8, 4),
            [
                ConvLayer(name="stem", out_channels=4, kernel_size=3, padding=1),
                ConvLayer(name="body", out_channels=4, kernel_size=3, padding=1),
                FCLayer(
                    name="head",
                    out_features=10,
                    inputs=("stem", "body"),
                    merge=MergeOp.ADD,
                ),
            ],
        )

    def test_chain_models_expose_chain_edges(self):
        model = _small_model()
        assert model.is_chain
        assert model.edges == ((0, 1), (1, 2), (2, 3))
        assert model.consumers(0) == (1,)
        assert model.consumers(3) == ()
        assert model[2].inputs == (1,)

    def test_residual_edges_and_consumers(self):
        model = self._residual_model()
        assert not model.is_chain
        assert model.edges == ((0, 1), (0, 2), (1, 2))
        assert model.consumers(0) == (1, 2)
        assert model[2].is_merge

    def test_add_merge_shape_inference(self):
        model = self._residual_model()
        # ADD keeps the branch shape; the fc head flattens it.
        assert model[2].input_shape == FeatureMapShape(1, 1, 8 * 8 * 4)
        assert model[2].weight_count == 8 * 8 * 4 * 10

    def test_concat_merge_shape_inference(self):
        from repro.nn.shapes import MergeOp

        model = build_model(
            "branchy",
            (8, 8, 4),
            [
                ConvLayer(name="stem", out_channels=4, kernel_size=3, padding=1),
                ConvLayer(name="left", out_channels=6, kernel_size=1, inputs=("stem",)),
                ConvLayer(name="right", out_channels=2, kernel_size=1, inputs=("stem",)),
                ConvLayer(
                    name="join",
                    out_channels=3,
                    kernel_size=1,
                    inputs=("left", "right"),
                    merge=MergeOp.CONCAT,
                ),
            ],
        )
        assert model[3].input_shape == FeatureMapShape(8, 8, 8)
        assert model.edges == ((0, 1), (0, 2), (1, 3), (2, 3))

    def test_unknown_input_name_raises(self):
        with pytest.raises(ValueError, match="unknown or later layer"):
            build_model(
                "bad",
                (8, 8, 4),
                [
                    ConvLayer(name="a", out_channels=4, kernel_size=3, padding=1),
                    ConvLayer(
                        name="b",
                        out_channels=4,
                        kernel_size=3,
                        padding=1,
                        inputs=("missing",),
                    ),
                ],
            )

    def test_mismatched_add_merge_raises(self):
        from repro.nn.shapes import MergeOp

        with pytest.raises(ShapeError):
            build_model(
                "bad-add",
                (8, 8, 4),
                [
                    ConvLayer(name="a", out_channels=4, kernel_size=3, padding=1),
                    ConvLayer(name="b", out_channels=8, kernel_size=3, padding=1),
                    ConvLayer(
                        name="c",
                        out_channels=4,
                        kernel_size=1,
                        inputs=("a", "b"),
                        merge=MergeOp.ADD,
                    ),
                ],
            )

    def test_dangling_layer_raises(self):
        with pytest.raises(ShapeError, match="no consumer"):
            build_model(
                "dangling",
                (8, 8, 4),
                [
                    ConvLayer(name="a", out_channels=4, kernel_size=3, padding=1),
                    ConvLayer(name="b", out_channels=4, kernel_size=3, padding=1),
                    ConvLayer(
                        name="c",
                        out_channels=4,
                        kernel_size=3,
                        padding=1,
                        inputs=("a",),
                    ),
                ],
            )

    def test_first_layer_cannot_name_predecessors(self):
        with pytest.raises(ValueError, match="first layer"):
            build_model(
                "bad-first",
                (8, 8, 4),
                [
                    ConvLayer(
                        name="a",
                        out_channels=4,
                        kernel_size=3,
                        padding=1,
                        inputs=("a",),
                    ),
                ],
            )
