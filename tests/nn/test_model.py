"""Tests for the DNNModel container and shape inference."""

import pytest

from repro.nn.layers import ConvLayer, FCLayer, PoolSpec
from repro.nn.model import build_model
from repro.nn.shapes import FeatureMapShape, ShapeError


def _small_model():
    return build_model(
        "small",
        (28, 28, 1),
        [
            ConvLayer(name="conv1", out_channels=20, kernel_size=5, pool=PoolSpec(2)),
            ConvLayer(name="conv2", out_channels=50, kernel_size=5, pool=PoolSpec(2)),
            FCLayer(name="fc1", out_features=500),
            FCLayer(name="fc2", out_features=10),
        ],
    )


class TestBuildModel:
    def test_number_of_weighted_layers(self):
        assert _small_model().num_weighted_layers == 4

    def test_layer_indices_are_sequential(self):
        model = _small_model()
        assert [layer.index for layer in model] == [0, 1, 2, 3]

    def test_shapes_chain_through_layers(self):
        model = _small_model()
        # conv1: 28x28x1 -> 24x24x20 -> pool -> 12x12x20
        assert model[0].output_shape == FeatureMapShape(24, 24, 20)
        assert model[0].post_pool_shape == FeatureMapShape(12, 12, 20)
        # conv2 consumes conv1's post-pool shape.
        assert model[1].input_shape == FeatureMapShape(12, 12, 20)
        assert model[1].output_shape == FeatureMapShape(8, 8, 50)

    def test_fc_input_is_flattened(self):
        model = _small_model()
        assert model[2].input_shape.is_vector
        assert model[2].input_shape.elements == 4 * 4 * 50

    def test_weight_counts(self):
        model = _small_model()
        assert model[0].weight_count == 5 * 5 * 1 * 20
        assert model[1].weight_count == 5 * 5 * 20 * 50
        assert model[2].weight_count == 4 * 4 * 50 * 500
        assert model[3].weight_count == 500 * 10

    def test_total_weights_is_sum_of_layers(self):
        model = _small_model()
        assert model.total_weights == sum(layer.weight_count for layer in model)

    def test_input_shape_accepts_tuple(self):
        model = build_model("t", (8, 8, 3), [FCLayer(name="fc", out_features=4)])
        assert model.input_shape == FeatureMapShape(8, 8, 3)

    def test_input_shape_accepts_feature_map_shape(self):
        model = build_model(
            "t", FeatureMapShape(8, 8, 3), [FCLayer(name="fc", out_features=4)]
        )
        assert model.input_shape == FeatureMapShape(8, 8, 3)

    def test_duplicate_layer_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate layer name"):
            build_model(
                "dup",
                (8, 8, 3),
                [FCLayer(name="fc", out_features=4), FCLayer(name="fc", out_features=2)],
            )

    def test_empty_model_rejected(self):
        with pytest.raises(ShapeError):
            build_model("empty", (8, 8, 3), [])

    def test_invalid_shape_propagates(self):
        with pytest.raises(ShapeError):
            build_model(
                "bad",
                (4, 4, 3),
                [ConvLayer(name="conv", out_channels=8, kernel_size=7)],
            )


class TestDNNModelAccessors:
    def test_len_and_iteration(self):
        model = _small_model()
        assert len(model) == 4
        assert len(list(model)) == 4

    def test_getitem(self):
        model = _small_model()
        assert model[0].name == "conv1"
        assert model[-1].name == "fc2"

    def test_layer_by_name(self):
        model = _small_model()
        assert model.layer_by_name("conv2").index == 1

    def test_layer_by_name_missing_raises_keyerror(self):
        with pytest.raises(KeyError):
            _small_model().layer_by_name("does-not-exist")

    def test_layer_names(self):
        assert _small_model().layer_names() == ["conv1", "conv2", "fc1", "fc2"]

    def test_conv_and_fc_counts(self):
        model = _small_model()
        assert model.num_conv_layers == 2
        assert model.num_fc_layers == 2

    def test_is_conv_is_fc_flags(self):
        model = _small_model()
        assert model[0].is_conv and not model[0].is_fc
        assert model[3].is_fc and not model[3].is_conv

    def test_total_macs_scales_with_batch(self):
        model = _small_model()
        assert model.total_macs(64) == 2 * model.total_macs(32)

    def test_total_macs_rejects_non_positive_batch(self):
        with pytest.raises(ValueError):
            _small_model().total_macs(0)

    def test_summary_mentions_every_layer(self):
        summary = _small_model().summary()
        for name in ("conv1", "conv2", "fc1", "fc2"):
            assert name in summary
