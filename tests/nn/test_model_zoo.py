"""Tests for the ten evaluation networks (Table 3 and Section 6.1)."""

import pytest

from repro.nn.layers import LayerType
from repro.nn.model_zoo import (
    MODEL_BUILDERS,
    alexnet,
    all_models,
    cifar_c,
    get_model,
    lenet_c,
    sconv,
    sfc,
    vgg_a,
    vgg_b,
    vgg_c,
    vgg_d,
    vgg_e,
)

#: Weighted-layer counts stated by (or implied by) the paper: "the number of
#: weighted layers of these models range from four to nineteen".
EXPECTED_LAYER_COUNTS = {
    "SFC": 4,
    "SCONV": 4,
    "Lenet-c": 4,
    "Cifar-c": 5,
    "AlexNet": 8,
    "VGG-A": 11,
    "VGG-B": 13,
    "VGG-C": 16,
    "VGG-D": 16,
    "VGG-E": 19,
}


class TestModelZooContents:
    def test_ten_models_available(self):
        assert len(MODEL_BUILDERS) == 10

    def test_all_models_builds_ten(self):
        assert len(all_models()) == 10

    @pytest.mark.parametrize("name,expected", sorted(EXPECTED_LAYER_COUNTS.items()))
    def test_weighted_layer_counts(self, name, expected):
        assert get_model(name).num_weighted_layers == expected

    def test_layer_count_range_matches_paper(self):
        counts = [model.num_weighted_layers for model in all_models()]
        assert min(counts) == 4
        assert max(counts) == 19

    def test_model_names_match_builders(self):
        for name, builder in MODEL_BUILDERS.items():
            assert builder().name == name


class TestSFC:
    def test_is_all_fully_connected(self):
        model = sfc()
        assert model.num_conv_layers == 0
        assert model.num_fc_layers == 4

    def test_table3_dimensions(self):
        """Table 3: 784-8192-8192-8192-10."""
        model = sfc()
        assert model.input_shape.elements == 784
        assert [layer.output_shape.elements for layer in model] == [8192, 8192, 8192, 10]

    def test_weight_counts(self):
        model = sfc()
        assert model[0].weight_count == 784 * 8192
        assert model[1].weight_count == 8192 * 8192
        assert model[3].weight_count == 8192 * 10


class TestSCONV:
    def test_is_all_convolutional(self):
        model = sconv()
        assert model.num_fc_layers == 0
        assert model.num_conv_layers == 4

    def test_table3_channel_progression(self):
        """Table 3: 20@5x5, 50@5x5 (pool), 50@5x5, 10@5x5 (pool)."""
        model = sconv()
        assert [layer.output_shape.channels for layer in model] == [20, 50, 50, 10]

    def test_final_output_is_ten_classes(self):
        model = sconv()
        assert model[-1].post_pool_shape.elements == 10


class TestLenetAndCifar:
    def test_lenet_layer_types(self):
        model = lenet_c()
        assert [layer.layer_type for layer in model] == [
            LayerType.CONV,
            LayerType.CONV,
            LayerType.FC,
            LayerType.FC,
        ]

    def test_lenet_output_classes(self):
        assert lenet_c()[-1].output_shape.elements == 10

    def test_cifar_layer_types(self):
        model = cifar_c()
        assert model.num_conv_layers == 3
        assert model.num_fc_layers == 2

    def test_cifar_input_is_cifar10(self):
        model = cifar_c()
        assert (model.input_shape.height, model.input_shape.width) == (32, 32)
        assert model.input_shape.channels == 3


class TestAlexNet:
    def test_layer_structure(self):
        model = alexnet()
        assert model.num_conv_layers == 5
        assert model.num_fc_layers == 3

    def test_known_shapes(self):
        model = alexnet()
        assert model[0].output_shape.height == 55  # conv1: 227 -> 55 at stride 4
        assert model[4].output_shape.channels == 256  # conv5
        assert model[-1].output_shape.elements == 1000

    def test_total_weights_in_expected_range(self):
        """AlexNet has roughly 60M parameters (we ignore biases)."""
        weights = alexnet().total_weights
        assert 5.0e7 < weights < 7.0e7


class TestVGGFamily:
    @pytest.mark.parametrize(
        "builder,expected_convs",
        [(vgg_a, 8), (vgg_b, 10), (vgg_c, 13), (vgg_d, 13), (vgg_e, 16)],
    )
    def test_conv_counts(self, builder, expected_convs):
        model = builder()
        assert model.num_conv_layers == expected_convs
        assert model.num_fc_layers == 3

    @pytest.mark.parametrize("builder", [vgg_a, vgg_b, vgg_c, vgg_d, vgg_e])
    def test_classifier_dimensions(self, builder):
        model = builder()
        fc_layers = [layer for layer in model if layer.is_fc]
        assert [layer.output_shape.elements for layer in fc_layers] == [4096, 4096, 1000]

    @pytest.mark.parametrize("builder", [vgg_a, vgg_b, vgg_c, vgg_d, vgg_e])
    def test_last_conv_feeds_7x7x512(self, builder):
        model = builder()
        last_conv = [layer for layer in model if layer.is_conv][-1]
        assert last_conv.post_pool_shape.elements == 7 * 7 * 512

    def test_vgg_d_parameter_count(self):
        """VGG-16 has ~138M parameters."""
        weights = vgg_d().total_weights
        assert 1.30e8 < weights < 1.45e8

    def test_vgg_e_is_deepest(self):
        counts = [builder().num_weighted_layers for builder in (vgg_a, vgg_b, vgg_c, vgg_d, vgg_e)]
        assert counts == sorted(counts)
        assert counts[-1] == 19

    def test_vgg_e_conv5_4_shape_matches_trick_analysis(self):
        """Section 6.5.2: conv5 of VGG-E has a 14x14x512 output and 512->512 3x3 kernels."""
        model = vgg_e()
        conv5_4 = model.layer_by_name("conv5_4")
        assert conv5_4.output_shape == type(conv5_4.output_shape)(14, 14, 512)
        assert conv5_4.weight_count == 512 * 512 * 9

    def test_vgg_e_fc3_shape_matches_trick_analysis(self):
        """Section 6.5.2: fc3 is 4096 -> 1000."""
        fc3 = vgg_e().layer_by_name("fc3")
        assert fc3.input_shape.elements == 4096
        assert fc3.output_shape.elements == 1000


class TestGetModel:
    def test_canonical_names(self):
        for name in MODEL_BUILDERS:
            assert get_model(name).name == name

    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("alexnet", "AlexNet"),
            ("vgg16", "VGG-D"),
            ("vgg19", "VGG-E"),
            ("lenet", "Lenet-c"),
            ("VGG_A", "VGG-A"),
            ("sfc", "SFC"),
        ],
    )
    def test_aliases(self, alias, expected):
        assert get_model(alias).name == expected

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown model"):
            get_model("resnet-50")


class TestGraphModelZoo:
    def test_graph_builders_are_separate_from_the_paper_ten(self):
        from repro.nn.model_zoo import GRAPH_MODEL_BUILDERS, all_model_builders

        assert len(MODEL_BUILDERS) == 10
        assert set(GRAPH_MODEL_BUILDERS) == {"ResNet-S", "Inception-S"}
        assert len(all_model_builders()) == 15

    def test_resnet_s_structure(self):
        from repro.nn.model_zoo import resnet_s
        from repro.nn.shapes import MergeOp

        model = resnet_s()
        assert not model.is_chain
        assert model.num_weighted_layers == 10
        merges = [layer for layer in model if layer.is_merge]
        assert len(merges) == 3
        assert all(layer.merge is MergeOp.ADD for layer in merges)
        # Residual branches join tensors of identical shape.
        for layer in merges:
            shapes = {model[source].post_pool_shape for source in layer.inputs}
            assert len(shapes) == 1

    def test_inception_s_structure(self):
        from repro.nn.model_zoo import inception_s
        from repro.nn.shapes import MergeOp

        model = inception_s()
        assert not model.is_chain
        assert model.num_weighted_layers == 11
        merges = [layer for layer in model if layer.is_merge]
        assert len(merges) == 2
        assert all(layer.merge is MergeOp.CONCAT for layer in merges)
        # Each merge concatenates three branches channel-wise.
        assert all(len(layer.inputs) == 3 for layer in merges)

    def test_graph_models_execute_in_reference_network(self):
        """Pooling-free and NONE-classifier by design, so execution works."""
        from repro.nn.model_zoo import all_graph_models
        from repro.nn.reference import ReferenceNetwork

        for model in all_graph_models():
            network = ReferenceNetwork(model, seed=0)
            states = network.training_step(
                network.random_batch(2),
                network.random_batch(2, seed=9).reshape(2, -1)[:, :10] * 0 + 1.0,
            )
            assert states[-1].output.shape == (2, 10)
            assert all(state.grad_weight is not None for state in states)


class TestAliasNormalization:
    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("vgg-a", "VGG-A"),
            ("vgg_a", "VGG-A"),
            ("VGG_A", "VGG-A"),
            ("vgga", "VGG-A"),
            ("lenet-c", "Lenet-c"),
            ("lenet_c", "Lenet-c"),
            ("LENETC", "Lenet-c"),
            ("resnet_s", "ResNet-S"),
            ("resnet-s", "ResNet-S"),
            ("ResNetS", "ResNet-S"),
            ("resnet", "ResNet-S"),
            ("inception_s", "Inception-S"),
            ("inception", "Inception-S"),
        ],
    )
    def test_separator_variants_resolve(self, alias, expected):
        assert get_model(alias).name == expected

    def test_error_message_lists_models_and_aliases(self):
        with pytest.raises(KeyError) as excinfo:
            get_model("resnet-50")
        message = str(excinfo.value)
        assert "known models" in message
        assert "VGG-E" in message and "ResNet-S" in message
        assert "aliases" in message
        assert "vgg16" in message and "lenet" in message


class TestLiveModelRegistration:
    def test_registered_builders_resolve_immediately(self):
        from repro.nn.model_zoo import MODEL_BUILDERS, lenet_c

        MODEL_BUILDERS["TestNet-X"] = lenet_c
        try:
            assert get_model("TestNet-X").name == "Lenet-c"
            assert get_model("testnet_x").name == "Lenet-c"
        finally:
            del MODEL_BUILDERS["TestNet-X"]
        with pytest.raises(KeyError):
            get_model("TestNet-X")


class TestParameterizedTransformers:
    def test_families_registered(self):
        from repro.nn.model_zoo import (
            PARAMETERIZED_MODEL_BUILDERS,
            all_model_builders,
        )

        assert set(PARAMETERIZED_MODEL_BUILDERS) == {"gpt_s", "bert_s", "gpt_r"}
        builders = all_model_builders()
        assert "gpt_s" in builders and "bert_s" in builders
        assert "gpt_r" in builders

    def test_default_depth(self):
        from repro.nn.model_zoo import DEFAULT_TRANSFORMER_LAYERS, bert_s, gpt_s

        model = gpt_s()
        assert model.name == f"gpt_s-{DEFAULT_TRANSFORMER_LAYERS}"
        assert len(model) == 4 * DEFAULT_TRANSFORMER_LAYERS + 2
        assert bert_s().name == f"bert_s-{DEFAULT_TRANSFORMER_LAYERS}"

    @pytest.mark.parametrize("blocks", [1, 2, 7, 96])
    def test_depth_controls_layer_count(self, blocks):
        from repro.nn.model_zoo import gpt_s

        model = gpt_s(blocks)
        assert model.is_chain
        assert len(model) == 4 * blocks + 2
        assert model[0].name == "embed"
        assert model[-1].name == "head"

    def test_blocks_are_identical_in_shape(self):
        from repro.nn.model_zoo import gpt_s

        model = gpt_s(5)
        # Per-block layer quads repeat exactly: same weight counts, same
        # output shapes block to block (the repetition the DP memoizes).
        blocks = [model.layers[1 + 4 * i : 1 + 4 * (i + 1)] for i in range(5)]
        signature = [(layer.weight_count, str(layer.output_shape)) for layer in blocks[0]]
        for block in blocks[1:]:
            assert [
                (layer.weight_count, str(layer.output_shape)) for layer in block
            ] == signature

    def test_invalid_depth_raises(self):
        from repro.nn.model_zoo import bert_s, gpt_s

        with pytest.raises(ValueError, match="positive block count"):
            gpt_s(0)
        with pytest.raises(ValueError, match="positive block count"):
            bert_s(-3)

    @pytest.mark.parametrize(
        "spelling,expected",
        [
            ("gpt_s", "gpt_s"),
            ("GPT-S", "gpt_s"),
            ("gpt_s-96", "gpt_s-96"),
            ("GPT_S_96", "gpt_s-96"),
            ("gpts96", "gpt_s-96"),
            ("bert-s-24", "bert_s-24"),
            ("BERTS8", "bert_s-8"),
        ],
    )
    def test_canonical_spellings(self, spelling, expected):
        from repro.nn.model_zoo import canonical_model_name

        assert canonical_model_name(spelling) == expected

    def test_get_model_depth_forms_agree(self):
        from repro.nn.model_zoo import get_model

        by_suffix = get_model("gpt_s-6")
        by_kwarg = get_model("gpt_s", layers=6)
        assert by_suffix.name == by_kwarg.name == "gpt_s-6"
        assert len(by_suffix) == len(by_kwarg)

    def test_get_model_conflicting_depths_raise(self):
        with pytest.raises(ValueError, match="conflicting depths"):
            get_model("gpt_s-96", layers=12)

    def test_get_model_layers_on_fixed_model_raises(self):
        with pytest.raises(ValueError, match="fixed depth"):
            get_model("AlexNet", layers=4)

    def test_digit_bearing_aliases_still_win(self):
        # "vgg16" must keep resolving through the alias table, not the
        # depth-suffix parser.
        assert get_model("vgg16").name == "VGG-D"

    def test_keyerror_lists_parameterized_families(self):
        with pytest.raises(KeyError) as excinfo:
            get_model("transformer-xl")
        message = str(excinfo.value)
        assert "gpt_s-<N>" in message and "bert_s-<N>" in message

    def test_families_differ_in_width(self):
        from repro.nn.model_zoo import bert_s, gpt_s

        assert bert_s(2).total_weights > gpt_s(2).total_weights


class TestResidualTransformer:
    """``gpt_r``: the DAG-shaped transformer with residual ADD skips."""

    def test_structure(self):
        from repro.nn.model_zoo import gpt_r
        from repro.nn.shapes import MergeOp

        model = gpt_r(4)
        assert model.name == "gpt_r-4"
        assert not model.is_chain
        assert len(model) == 4 * 4 + 2
        assert model[0].name == "embed"
        assert model[-1].name == "head"
        merges = [layer for layer in model if layer.is_merge]
        # Every block after the first starts with a residual join.
        assert len(merges) == 3
        assert all(layer.merge is MergeOp.ADD for layer in merges)
        for layer in merges:
            shapes = {model[source].output_shape for source in layer.inputs}
            assert len(shapes) == 1

    def test_skip_edges_span_two_layers(self):
        from repro.nn.model_zoo import gpt_r

        model = gpt_r(6)
        chain = {(index, index + 1) for index in range(len(model) - 1)}
        skips = sorted(set(model.edges) - chain)
        # proj of block i-1 feeds qkv of block i, skipping up/down.
        assert skips == [(4 * i + 2, 4 * i + 5) for i in range(5)]

    def test_blocks_repeat_identically(self):
        from repro.nn.model_zoo import gpt_r

        model = gpt_r(5)
        blocks = [model.layers[1 + 4 * i : 1 + 4 * (i + 1)] for i in range(5)]
        signature = [
            (layer.weight_count, str(layer.output_shape)) for layer in blocks[0]
        ]
        for block in blocks[1:]:
            assert [
                (layer.weight_count, str(layer.output_shape)) for layer in block
            ] == signature

    def test_name_resolution_and_depth_forms(self):
        from repro.nn.model_zoo import canonical_model_name, get_model

        assert canonical_model_name("GPT-R-48") == "gpt_r-48"
        assert canonical_model_name("gptr12") == "gpt_r-12"
        by_suffix = get_model("gpt_r-3")
        by_kwarg = get_model("gpt_r", layers=3)
        assert by_suffix.name == by_kwarg.name == "gpt_r-3"

    def test_invalid_depth_raises(self):
        from repro.nn.model_zoo import gpt_r

        with pytest.raises(ValueError, match="positive block count"):
            gpt_r(0)
