"""Tests for layer specifications (conv, fc, pooling, activation)."""

import pytest

from repro.nn.layers import Activation, ConvLayer, FCLayer, LayerType, PoolSpec
from repro.nn.shapes import FeatureMapShape, ShapeError


class TestPoolSpec:
    def test_apply_halves_spatial_dims(self):
        assert PoolSpec(2).apply(FeatureMapShape(8, 8, 16)) == FeatureMapShape(4, 4, 16)

    def test_default_stride_equals_size(self):
        spec = PoolSpec(3)
        assert spec.apply(FeatureMapShape(9, 9, 4)) == FeatureMapShape(3, 3, 4)

    def test_explicit_stride(self):
        spec = PoolSpec(3, stride=2)
        assert spec.apply(FeatureMapShape(9, 9, 4)) == FeatureMapShape(4, 4, 4)

    def test_avg_kind_accepted(self):
        assert PoolSpec(2, kind="avg").kind == "avg"

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            PoolSpec(2, kind="median")

    def test_invalid_size_rejected(self):
        with pytest.raises(ShapeError):
            PoolSpec(0)


class TestConvLayer:
    def test_layer_type(self):
        layer = ConvLayer(name="c", out_channels=8)
        assert layer.layer_type is LayerType.CONV

    def test_output_shape(self):
        layer = ConvLayer(name="c", out_channels=20, kernel_size=5)
        out = layer.output_shape(FeatureMapShape(28, 28, 1))
        assert out == FeatureMapShape(24, 24, 20)

    def test_post_pool_shape_applies_pooling(self):
        layer = ConvLayer(name="c", out_channels=20, kernel_size=5, pool=PoolSpec(2))
        out = layer.post_pool_shape(FeatureMapShape(28, 28, 1))
        assert out == FeatureMapShape(12, 12, 20)

    def test_post_pool_shape_without_pooling_matches_output(self):
        layer = ConvLayer(name="c", out_channels=20, kernel_size=5)
        in_shape = FeatureMapShape(28, 28, 1)
        assert layer.post_pool_shape(in_shape) == layer.output_shape(in_shape)

    def test_weight_elements(self):
        layer = ConvLayer(name="c", out_channels=50, kernel_size=5)
        # [5 x 5 x 20] x 50 kernels
        assert layer.weight_elements(FeatureMapShape(12, 12, 20)) == 5 * 5 * 20 * 50

    def test_macs_per_sample(self):
        layer = ConvLayer(name="c", out_channels=50, kernel_size=5)
        in_shape = FeatureMapShape(12, 12, 20)
        out = layer.output_shape(in_shape)
        expected = out.elements * 5 * 5 * 20
        assert layer.macs_per_sample(in_shape) == expected

    def test_paper_example_conv_tensors(self):
        """The Section 3.4 convolutional example: F_l 12x12x20, W 5x5x20x50, F_{l+1} 8x8x50."""
        layer = ConvLayer(name="conv", out_channels=50, kernel_size=5)
        in_shape = FeatureMapShape(12, 12, 20)
        assert layer.output_shape(in_shape) == FeatureMapShape(8, 8, 50)
        assert layer.weight_elements(in_shape) == 25_000

    def test_rejects_zero_out_channels(self):
        with pytest.raises(ShapeError):
            ConvLayer(name="bad", out_channels=0)

    def test_rejects_invalid_kernel(self):
        with pytest.raises(ShapeError):
            ConvLayer(name="bad", out_channels=4, kernel_size=0)

    def test_default_activation_is_relu(self):
        assert ConvLayer(name="c", out_channels=4).activation is Activation.RELU


class TestFCLayer:
    def test_layer_type(self):
        assert FCLayer(name="f", out_features=10).layer_type is LayerType.FC

    def test_output_shape_is_vector(self):
        out = FCLayer(name="f", out_features=100).output_shape(FeatureMapShape(1, 1, 70))
        assert out == FeatureMapShape(1, 1, 100)

    def test_weight_elements_matrix(self):
        layer = FCLayer(name="f", out_features=100)
        assert layer.weight_elements(FeatureMapShape(1, 1, 70)) == 7000

    def test_weight_elements_flattened_spatial_input(self):
        layer = FCLayer(name="f", out_features=10)
        assert layer.weight_elements(FeatureMapShape(4, 4, 50)) == 4 * 4 * 50 * 10

    def test_macs_per_sample_equals_weight_count(self):
        layer = FCLayer(name="f", out_features=100)
        in_shape = FeatureMapShape(1, 1, 70)
        assert layer.macs_per_sample(in_shape) == layer.weight_elements(in_shape)

    def test_rejects_zero_out_features(self):
        with pytest.raises(ShapeError):
            FCLayer(name="bad", out_features=0)

    def test_paper_example_fc_tensors(self):
        """The Section 3.1 fully-connected example: 70 -> 100 neurons."""
        layer = FCLayer(name="fc", out_features=100)
        in_shape = FeatureMapShape(1, 1, 70)
        assert layer.weight_elements(in_shape) == 70 * 100
        assert layer.output_shape(in_shape).elements == 100


class TestActivation:
    def test_all_members_have_distinct_values(self):
        values = [member.value for member in Activation]
        assert len(values) == len(set(values))

    def test_str_is_value(self):
        assert str(Activation.RELU) == "relu"
