"""Tests for the numpy reference kernels (forward / backward / gradient)."""

import numpy as np
import pytest

from repro.nn.layers import Activation, ConvLayer, FCLayer, PoolSpec
from repro.nn.model import build_model
from repro.nn.reference import (
    ReferenceNetwork,
    UnsupportedLayerError,
    activation_backward,
    activation_forward,
    conv2d_backward_input,
    conv2d_backward_weight,
    conv2d_forward,
    fc_backward_input,
    fc_backward_weight,
    fc_forward,
    im2col,
)


def _numerical_gradient(function, array, epsilon=1e-6):
    """Central-difference numerical gradient of a scalar-valued function."""
    gradient = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = function()
        flat[index] = original - epsilon
        lower = function()
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * epsilon)
    return gradient


class TestActivations:
    def test_relu_forward(self):
        z = np.array([-1.0, 0.0, 2.5])
        np.testing.assert_allclose(activation_forward(z, Activation.RELU), [0.0, 0.0, 2.5])

    def test_relu_backward_masks_negative_inputs(self):
        z = np.array([-1.0, 3.0])
        grad = np.array([5.0, 7.0])
        np.testing.assert_allclose(
            activation_backward(z, grad, Activation.RELU), [0.0, 7.0]
        )

    def test_none_is_identity(self):
        z = np.array([1.0, -2.0])
        np.testing.assert_allclose(activation_forward(z, Activation.NONE), z)
        np.testing.assert_allclose(activation_backward(z, z, Activation.NONE), z)

    def test_unsupported_activation_raises(self):
        with pytest.raises(UnsupportedLayerError):
            activation_forward(np.zeros(3), Activation.SIGMOID)


class TestFullyConnectedKernels:
    def test_forward_matches_matmul(self):
        rng = np.random.default_rng(0)
        x, w = rng.standard_normal((4, 5)), rng.standard_normal((5, 3))
        np.testing.assert_allclose(fc_forward(x, w), x @ w)

    def test_weight_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        x, w = rng.standard_normal((3, 4)), rng.standard_normal((4, 2))
        grad_out = rng.standard_normal((3, 2))
        analytic = fc_backward_weight(x, grad_out)
        numerical = _numerical_gradient(lambda: float((fc_forward(x, w) * grad_out).sum()), w)
        np.testing.assert_allclose(analytic, numerical, atol=1e-5)

    def test_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(2)
        x, w = rng.standard_normal((3, 4)), rng.standard_normal((4, 2))
        grad_out = rng.standard_normal((3, 2))
        analytic = fc_backward_input(grad_out, w)
        numerical = _numerical_gradient(lambda: float((fc_forward(x, w) * grad_out).sum()), x)
        np.testing.assert_allclose(analytic, numerical, atol=1e-5)


class TestConvolutionKernels:
    def test_im2col_shape(self):
        x = np.arange(2 * 5 * 5 * 3, dtype=float).reshape(2, 5, 5, 3)
        columns = im2col(x, kernel=3, stride=1, padding=0)
        assert columns.shape == (2, 3, 3, 27)

    def test_forward_shape_and_known_value(self):
        x = np.ones((1, 4, 4, 1))
        w = np.ones((3, 3, 1, 2))
        out = conv2d_forward(x, w)
        assert out.shape == (1, 2, 2, 2)
        np.testing.assert_allclose(out, 9.0)

    def test_forward_with_padding_preserves_size(self):
        x = np.random.default_rng(0).standard_normal((2, 6, 6, 3))
        w = np.random.default_rng(1).standard_normal((3, 3, 3, 4))
        out = conv2d_forward(x, w, padding=1)
        assert out.shape == (2, 6, 6, 4)

    def test_forward_with_stride(self):
        x = np.random.default_rng(0).standard_normal((1, 8, 8, 2))
        w = np.random.default_rng(1).standard_normal((3, 3, 2, 2))
        assert conv2d_forward(x, w, stride=2).shape == (1, 3, 3, 2)

    def test_linearity_over_input_channels(self):
        """Convolving channel slices separately and summing equals the full conv --
        the property model parallelism relies on."""
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 6, 6, 4))
        w = rng.standard_normal((3, 3, 4, 5))
        full = conv2d_forward(x, w)
        split = conv2d_forward(x[..., :2], w[:, :, :2, :]) + conv2d_forward(
            x[..., 2:], w[:, :, 2:, :]
        )
        np.testing.assert_allclose(full, split, atol=1e-12)

    def test_weight_gradient_matches_numerical(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((2, 5, 5, 2))
        w = rng.standard_normal((3, 3, 2, 3))
        grad_out = rng.standard_normal((2, 3, 3, 3))
        analytic = conv2d_backward_weight(x, grad_out, kernel=3)
        numerical = _numerical_gradient(
            lambda: float((conv2d_forward(x, w) * grad_out).sum()), w
        )
        np.testing.assert_allclose(analytic, numerical, atol=1e-5)

    def test_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((1, 5, 5, 2))
        w = rng.standard_normal((3, 3, 2, 2))
        grad_out = rng.standard_normal((1, 3, 3, 2))
        analytic = conv2d_backward_input(grad_out, w, x.shape)
        numerical = _numerical_gradient(
            lambda: float((conv2d_forward(x, w) * grad_out).sum()), x
        )
        np.testing.assert_allclose(analytic, numerical, atol=1e-5)

    def test_padded_gradients_match_numerical(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((1, 4, 4, 2))
        w = rng.standard_normal((3, 3, 2, 2))
        grad_out = rng.standard_normal((1, 4, 4, 2))
        analytic_w = conv2d_backward_weight(x, grad_out, kernel=3, padding=1)
        numerical_w = _numerical_gradient(
            lambda: float((conv2d_forward(x, w, padding=1) * grad_out).sum()), w
        )
        np.testing.assert_allclose(analytic_w, numerical_w, atol=1e-5)


class TestReferenceNetwork:
    def _network(self):
        model = build_model(
            "ref",
            (6, 6, 2),
            [
                ConvLayer(name="conv", out_channels=4, kernel_size=3, activation=Activation.RELU),
                FCLayer(name="fc", out_features=5, activation=Activation.NONE),
            ],
        )
        return ReferenceNetwork(model, seed=7)

    def test_forward_shapes(self):
        network = self._network()
        x = network.random_batch(3)
        states = network.forward(x)
        assert states[0].output.shape == (3, 4, 4, 4)
        assert states[1].output.shape == (3, 5)

    def test_training_step_fills_gradients(self):
        network = self._network()
        x = network.random_batch(3)
        grad_output = np.ones((3, 5))
        states = network.training_step(x, grad_output)
        for index, state in enumerate(states):
            assert state.grad_weight is not None
            assert state.grad_weight.shape == network.weights[index].shape
            assert state.grad_input is not None

    def test_whole_network_gradient_matches_numerical(self):
        network = self._network()
        x = network.random_batch(2, seed=9)
        grad_output = np.random.default_rng(10).standard_normal((2, 5))

        def loss():
            states = network.forward(x)
            return float((states[-1].output * grad_output).sum())

        states = network.training_step(x, grad_output)
        numerical = _numerical_gradient(loss, network.weights[1])
        np.testing.assert_allclose(states[1].grad_weight, numerical, atol=1e-5)

    def test_grad_output_shape_checked(self):
        network = self._network()
        x = network.random_batch(3)
        with pytest.raises(ValueError):
            network.training_step(x, np.ones((3, 4)))

    def test_reproducible_initialisation(self):
        first = self._network()
        second = self._network()
        for a, b in zip(first.weights, second.weights):
            np.testing.assert_array_equal(a, b)

    def test_pooling_not_supported(self):
        model = build_model(
            "pooled",
            (8, 8, 1),
            [ConvLayer(name="conv", out_channels=2, kernel_size=3, pool=PoolSpec(2))],
        )
        with pytest.raises(UnsupportedLayerError):
            ReferenceNetwork(model)
