"""Tests for the top-level package surface."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_key_classes_importable_from_top_level(self):
        assert repro.Parallelism.DATA.short == "dp"
        assert repro.HierarchicalPartitioner(num_levels=4).num_accelerators == 16
        assert repro.ArrayConfig().num_accelerators == 16

    def test_subpackages_importable(self):
        import repro.accelerator
        import repro.analysis
        import repro.core
        import repro.interconnect
        import repro.nn
        import repro.sim

        for module in (
            repro.core,
            repro.nn,
            repro.accelerator,
            repro.interconnect,
            repro.sim,
            repro.analysis,
        ):
            assert module.__doc__

    def test_subpackage_all_exports_resolve(self):
        import repro.accelerator
        import repro.analysis
        import repro.core
        import repro.interconnect
        import repro.nn
        import repro.sim

        for module in (
            repro.core,
            repro.nn,
            repro.accelerator,
            repro.interconnect,
            repro.sim,
            repro.analysis,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"

    def test_public_functions_have_docstrings(self):
        """Every public callable exported at the top level carries a docstring."""
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            member = getattr(repro, name)
            if callable(member):
                assert member.__doc__, f"repro.{name} lacks a docstring"
