"""The service layer end to end: app logic, HTTP server, client, lifecycle.

A module-scoped live server (ephemeral port, in-process accept thread)
backs the endpoint tests; unit tests drive :class:`HyParService.handle`
directly where HTTP adds nothing (eviction, concurrency).
"""

from __future__ import annotations

import json
import os
import signal
import threading

import pytest

from repro.service import HyParService, ServiceClient, build_server
from repro.service.server import DEFAULT_HOST, DEFAULT_PORT, serve
from repro.sweep.cache import shared_table_cache
from repro.sweep.runner import run_sweep
from repro.sweep.spec import SweepSpec

TINY_SPEC = {"name": "tiny", "models": ["SFC"], "batch_sizes": [64], "array_sizes": [4]}


@pytest.fixture(scope="module")
def live_server():
    server = build_server(port=0)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    yield server
    server.close()
    thread.join(timeout=5.0)


@pytest.fixture(scope="module")
def client(live_server):
    with ServiceClient("127.0.0.1", live_server.port) as client:
        client.wait_until_healthy()
        yield client


def _post(service: HyParService, path: str, payload) -> tuple[int, dict]:
    status, body = service.handle("POST", path, json.dumps(payload).encode())
    return status, json.loads(body)


class TestGetEndpoints:
    def test_healthz_reports_caches_and_workers(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 1
        assert set(health["endpoints"]) == {
            "/partition", "/simulate", "/sweep", "/replan",
            "/models", "/strategies", "/healthz",
        }
        assert health["degraded"] is False
        assert health["requests"]["timeouts"] == 0
        assert health["sim_engines"] == {
            "default": "analytic",
            "valid": ["analytic", "network"],
        }
        assert health["requests"]["stale_served"] == 0
        assert {"hits", "misses", "evictions", "hit_rate"} <= set(
            health["result_cache"]
        )
        assert {"hits", "misses", "evictions", "hit_rate"} <= set(
            health["table_cache"]
        )
        assert health["uptime_seconds"] >= 0

    def test_models_lists_the_zoo(self, client):
        names = [model["name"] for model in client.models()["models"]]
        assert "VGG-A" in names and "ResNet-S" in names
        # Parameterized families list at their default depths.
        assert "gpt_s-12" in names and "bert_s-12" in names
        assert len(names) == 15

    def test_strategies_lists_the_registry(self, client):
        shorts = [spec["short"] for spec in client.strategies()["strategies"]]
        assert shorts == ["dp", "mp", "pp"]


class TestPartitionEndpoint:
    def test_partition_matches_the_offline_search(self, client):
        from repro.analysis.experiments import ExperimentRunner
        from repro.accelerator.array import ArrayConfig
        from repro.nn.model_zoo import lenet_c

        served = client.partition(model="Lenet-c", batch_size=64, num_accelerators=4)
        offline = ExperimentRunner(
            array=ArrayConfig(num_accelerators=4), batch_size=64
        ).optimized_parallelism(lenet_c())
        assert served["total_communication_bytes"] == offline.total_communication_bytes
        assert [level["assignment"] for level in served["levels"]] == [
            [choice.short for choice in level.assignment] for level in offline.levels
        ]
        assert served["layers"] == ["conv1", "conv2", "fc1", "fc2"]

    def test_repeated_requests_hit_the_cache(self, client):
        fields = {"model": "Lenet-c", "batch_size": 32, "num_accelerators": 4}
        client.partition(**fields)
        hits_before = client.healthz()["result_cache"]["hits"]
        for _ in range(5):
            client.partition(**fields)
        hits_after = client.healthz()["result_cache"]["hits"]
        assert hits_after >= hits_before + 5

    def test_equivalent_spellings_share_one_entry(self, client):
        canonical = client.partition(model="Lenet-c", batch_size=48, num_accelerators=4)
        misses_before = client.healthz()["result_cache"]["misses"]
        aliased = client.partition(num_accelerators=4, model="lenet", batch_size=48)
        assert client.healthz()["result_cache"]["misses"] == misses_before
        assert aliased == canonical


class TestSimulateEndpoint:
    def test_simulate_returns_the_grid_point_row(self, client):
        result = client.simulate(model="Lenet-c", batch_size=64, num_accelerators=4)
        row = result["row"]
        assert row["hypar_speedup"] > 0
        assert row["hypar_step_seconds"] > 0
        assert row["model"] == "Lenet-c"
        assert result["label"] == "Lenet-c/b64/n4/htree/parallelism-aware/dp,mp"

    def test_single_accelerator_baseline_point(self, client):
        row = client.simulate(model="SFC", batch_size=64, num_accelerators=1)["row"]
        assert row["single_step_seconds"] > 0
        assert "hypar_speedup" not in row

    def test_network_engine_point_is_labelled_and_differs(self, client):
        analytic = client.simulate(
            model="Lenet-c", batch_size=64, num_accelerators=4
        )
        network = client.simulate(
            model="Lenet-c", batch_size=64, num_accelerators=4,
            sim_engine="network",
        )
        assert network["label"] == analytic["label"] + "/network"
        assert network["request"]["sim_engine"] == "network"
        assert "sim_engine" not in analytic["request"]
        assert network["row"]["sim_engine"] == "network"
        assert "sim_engine" not in analytic["row"]
        assert (
            network["row"]["data_parallelism_step_seconds"]
            < analytic["row"]["data_parallelism_step_seconds"]
        )


class TestSweepEndpoint:
    def test_sweep_bytes_match_the_cli_artifact(self, client, tmp_path):
        served = client.request("POST", "/sweep", {"spec": TINY_SPEC})
        assert served.status == 200
        result = run_sweep(SweepSpec.from_json(TINY_SPEC))
        paths = result.write_artifacts(str(tmp_path))
        with open(paths["json"], "rb") as handle:
            assert served.body == handle.read()

    def test_sweep_by_preset_is_cached(self, client):
        first = client.request("POST", "/sweep", {"spec": TINY_SPEC})
        hits_before = client.healthz()["result_cache"]["hits"]
        second = client.request("POST", "/sweep", {"spec": TINY_SPEC})
        assert second.body == first.body
        assert client.healthz()["result_cache"]["hits"] == hits_before + 1


class TestMalformedRequests:
    def test_invalid_json_body(self, client):
        response = client.request("POST", "/partition", None)
        # No payload at all -> empty body.
        assert response.status == 400
        assert "body" in response.json()["error"]

    def test_unparseable_json_names_the_problem(self, live_server):
        status, body = live_server.service.handle("POST", "/partition", b"{nope")
        assert status == 400
        assert "not valid JSON" in json.loads(body)["error"]

    def test_unknown_field_lists_known_fields(self, client):
        response = client.request("POST", "/partition", {"model": "SFC", "batches": 4})
        assert response.status == 400
        error = response.json()["error"]
        assert "batches" in error and "known fields" in error

    def test_unknown_model_lists_the_zoo(self, client):
        response = client.request("POST", "/partition", {"model": "nope"})
        assert response.status == 400
        assert "known models" in response.json()["error"]

    def test_wrong_method_is_405(self, client):
        response = client.request("GET", "/partition")
        assert response.status == 405
        assert "POST" in response.json()["error"]

    def test_unknown_path_is_404_with_endpoint_table(self, client):
        response = client.request("GET", "/nope")
        assert response.status == 404
        assert "/partition" in response.json()["endpoints"]

    def test_errors_count_in_healthz(self, client):
        errors_before = client.healthz()["requests"]["errors"]
        client.request("POST", "/partition", {"model": "nope"})
        assert client.healthz()["requests"]["errors"] == errors_before + 1


class TestTransportHardening:
    """Raw-socket abuse of the HTTP layer (headers the client never sends)."""

    @staticmethod
    def _raw_exchange(server, request: bytes) -> bytes:
        import socket as socket_module

        with socket_module.create_connection(
            ("127.0.0.1", server.port), timeout=10.0
        ) as sock:
            sock.sendall(request)
            sock.shutdown(socket_module.SHUT_WR)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)

    def test_negative_content_length_is_a_400_not_a_hang(self, live_server):
        response = self._raw_exchange(
            live_server,
            b"POST /partition HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: -1\r\n\r\n",
        )
        assert b"400" in response.split(b"\r\n", 1)[0]
        assert b"invalid Content-Length" in response

    def test_non_numeric_content_length_is_a_400(self, live_server):
        response = self._raw_exchange(
            live_server,
            b"POST /partition HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: abc\r\n\r\n",
        )
        assert b"400" in response.split(b"\r\n", 1)[0]
        assert b"invalid Content-Length" in response

    def test_oversized_body_is_a_413_and_closes_the_connection(self, live_server):
        # A pipelined valid request rides behind the oversized one; the
        # unread body desynchronizes the stream, so the server must close
        # after the 413 instead of parsing the stale bytes as a request.
        response = self._raw_exchange(
            live_server,
            b"POST /partition HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 2097152\r\n\r\n"
            b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        status_line = response.split(b"\r\n", 1)[0]
        assert b"413" in status_line
        assert b"exceeds" in response
        assert b"Connection: close" in response
        assert response.count(b"HTTP/1.1") == 1


class TestServiceUnit:
    def test_lru_evicts_at_cache_size(self):
        with HyParService(cache_size=2) as service:
            for batch in (16, 24, 40):
                status, _ = _post(
                    service,
                    "/partition",
                    {"model": "Lenet-c", "batch_size": batch, "num_accelerators": 4},
                )
                assert status == 200
            stats = service.result_cache.stats()
            assert stats["size"] == 2
            assert stats["evictions"] == 1
            # The evicted (least recently used) first request recomputes.
            _post(
                service,
                "/partition",
                {"model": "Lenet-c", "batch_size": 16, "num_accelerators": 4},
            )
            assert service.result_cache.stats()["misses"] == 4

    def test_concurrent_identical_requests_compile_the_table_once(self):
        # A batch size no other test uses, so the compiled-table cache
        # provably goes from cold to warm inside this test.
        payload = {"model": "Lenet-c", "batch_size": 112, "num_accelerators": 4}
        table_misses_before = shared_table_cache().misses
        with HyParService(cache_size=8) as service:
            results: list[tuple[int, dict]] = []
            barrier = threading.Barrier(6)

            def fire():
                barrier.wait(5.0)
                results.append(_post(service, "/partition", payload))

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30.0)

            assert [status for status, _ in results] == [200] * 6
            bodies = [body for _, body in results]
            assert all(body == bodies[0] for body in bodies)
            assert service.result_cache.stats()["misses"] == 1
        assert shared_table_cache().misses == table_misses_before + 1

    def test_unexpected_exception_is_a_500_not_a_crash(self, monkeypatch):
        with HyParService(cache_size=2) as service:
            monkeypatch.setattr(
                service, "_partition_body", lambda request: 1 / 0
            )
            status, body = _post(service, "/partition", {"model": "SFC"})
            assert status == 500
            assert "internal error" in body["error"]


class TestServeLifecycle:
    def test_serve_shuts_down_cleanly_on_stop_event(self):
        ready = threading.Event()
        stop = threading.Event()
        codes: list[int] = []

        def run():
            codes.append(
                serve(
                    port=0,
                    ready=ready,
                    stop=stop,
                    install_signal_handlers=False,
                )
            )

        thread = threading.Thread(target=run)
        thread.start()
        assert ready.wait(10.0)
        stop.set()
        thread.join(10.0)
        assert codes == [0]

    def test_serve_handles_sigterm_in_the_main_thread(self):
        # The real CI/ops teardown path: SIGTERM against a serving daemon.
        # serve() runs here in the main thread (signal handlers require
        # it); a helper thread delivers the signal once the socket is up.
        ready = threading.Event()

        def shoot():
            assert ready.wait(10.0)
            os.kill(os.getpid(), signal.SIGTERM)

        shooter = threading.Thread(target=shoot)
        shooter.start()
        assert serve(port=0, ready=ready) == 0
        shooter.join(5.0)
        # The previous SIGTERM disposition was restored on the way out.
        assert signal.getsignal(signal.SIGTERM) == signal.SIG_DFL


class TestCliDefaults:
    def test_parser_defaults_match_the_service_constants(self):
        from repro.cli import build_parser
        from repro.service.cache import DEFAULT_CACHE_SIZE

        args = build_parser().parse_args(["serve"])
        assert args.host == DEFAULT_HOST
        assert args.port == DEFAULT_PORT
        assert args.cache_size == DEFAULT_CACHE_SIZE
        assert args.workers == 1
        assert args.handler.__name__ == "_cmd_serve"

    def test_parser_accepts_overrides(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "4", "--cache-size", "16"]
        )
        assert (args.port, args.workers, args.cache_size) == (0, 4, 16)
