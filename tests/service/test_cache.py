"""LRU behaviour and single-flight semantics of the response cache."""

import threading

import pytest

from repro.service.cache import ResultCache


class TestLRU:
    def test_computes_once_then_hits(self):
        cache = ResultCache(limit=4)
        calls = []
        compute = lambda: calls.append(1) or b"value"  # noqa: E731
        first, hit_first = cache.get_or_compute("k", compute)
        second, hit_second = cache.get_or_compute("k", compute)
        assert (first, hit_first) == (b"value", False)
        assert (second, hit_second) == (b"value", True)
        assert len(calls) == 1

    def test_evicts_least_recently_used_at_limit(self):
        cache = ResultCache(limit=2)
        cache.get_or_compute("a", lambda: b"a")
        cache.get_or_compute("b", lambda: b"b")
        cache.get_or_compute("a", lambda: b"a")  # refresh a
        cache.get_or_compute("c", lambda: b"c")  # evicts b
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_eviction_respects_the_configured_size(self):
        limit = 3
        cache = ResultCache(limit=limit)
        for index in range(10):
            cache.get_or_compute(str(index), lambda index=index: index)
        assert len(cache) == limit
        assert cache.evictions == 10 - limit
        # The survivors are exactly the most recent inserts.
        assert all(str(index) in cache for index in (7, 8, 9))

    def test_rejects_non_positive_limit(self):
        with pytest.raises(ValueError):
            ResultCache(limit=0)

    def test_stats_counters(self):
        cache = ResultCache(limit=8)
        cache.get_or_compute("k", lambda: b"v")
        cache.get_or_compute("k", lambda: b"v")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1
        assert stats["limit"] == 8
        assert stats["hit_rate"] == 0.5

    def test_clear_resets(self):
        cache = ResultCache(limit=2)
        cache.get_or_compute("k", lambda: b"v")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 0


class TestSingleFlight:
    def test_concurrent_identical_requests_compute_exactly_once(self):
        cache = ResultCache(limit=8)
        started = threading.Event()
        release = threading.Event()
        calls = []

        def compute():
            calls.append(threading.get_ident())
            started.set()
            release.wait(5.0)
            return b"expensive"

        results = []

        def worker():
            results.append(cache.get_or_compute("k", compute))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        threads[0].start()
        assert started.wait(5.0)
        for thread in threads[1:]:
            thread.start()
        # Give the waiters time to coalesce onto the in-flight computation,
        # then let it finish.
        deadline = threading.Event()
        deadline.wait(0.05)
        release.set()
        for thread in threads:
            thread.join(5.0)

        assert len(calls) == 1
        assert [value for value, _ in results] == [b"expensive"] * 8
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["coalesced"] + stats["hits"] == 7

    def test_failed_compute_propagates_and_leaves_no_entry(self):
        cache = ResultCache(limit=8)

        def boom():
            raise RuntimeError("compilation failed")

        with pytest.raises(RuntimeError, match="compilation failed"):
            cache.get_or_compute("k", boom)
        assert "k" not in cache
        # The key is retryable after a failure.
        value, hit = cache.get_or_compute("k", lambda: b"ok")
        assert (value, hit) == (b"ok", False)

    def test_waiters_see_the_owners_error(self):
        cache = ResultCache(limit=8)
        started = threading.Event()
        release = threading.Event()

        def boom():
            started.set()
            release.wait(5.0)
            raise RuntimeError("boom")

        errors = []

        def owner():
            try:
                cache.get_or_compute("k", boom)
            except RuntimeError as error:
                errors.append(error)

        def waiter():
            try:
                cache.get_or_compute("k", lambda: b"never")
            except RuntimeError as error:
                errors.append(error)

        owner_thread = threading.Thread(target=owner)
        owner_thread.start()
        assert started.wait(5.0)
        waiter_thread = threading.Thread(target=waiter)
        waiter_thread.start()
        # Only release the failing owner once the waiter has provably
        # coalesced onto it; otherwise the waiter would just recompute.
        for _ in range(500):
            if cache.stats()["coalesced"] == 1:
                break
            threading.Event().wait(0.01)
        assert cache.stats()["coalesced"] == 1
        release.set()
        owner_thread.join(5.0)
        waiter_thread.join(5.0)
        assert len(errors) == 2
