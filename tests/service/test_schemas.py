"""Request canonicalization and cache-key determinism."""

import pytest

from repro.service.schemas import (
    PartitionRequest,
    SchemaError,
    SimulateRequest,
    SweepRequest,
)
from repro.sweep.spec import PRESETS


class TestPartitionRequest:
    def test_defaults_fill_in(self):
        request = PartitionRequest.from_payload({"model": "VGG-A"})
        assert request == PartitionRequest(model="VGG-A")
        assert request.batch_size == 256
        assert request.num_accelerators == 16
        assert request.scaling_mode == "parallelism-aware"
        assert request.strategies == "dp,mp"

    def test_key_invariant_under_field_reordering(self):
        first = PartitionRequest.from_payload(
            {"model": "Lenet-c", "batch_size": 64, "num_accelerators": 4}
        )
        second = PartitionRequest.from_payload(
            {"num_accelerators": 4, "model": "Lenet-c", "batch_size": 64}
        )
        assert first == second
        assert first.cache_key() == second.cache_key()

    def test_key_invariant_under_default_filling(self):
        implicit = PartitionRequest.from_payload({"model": "VGG-A"})
        explicit = PartitionRequest.from_payload(
            {
                "model": "vgg_a",
                "batch_size": 256,
                "num_accelerators": 16,
                "scaling_mode": "PARALLELISM_AWARE",
                "strategies": "dp,mp",
            }
        )
        assert implicit == explicit
        assert implicit.cache_key() == explicit.cache_key()

    def test_model_aliases_and_separators_canonicalize(self):
        for spelling in ("vgg16", "VGG-D", "vgg_d"):
            assert PartitionRequest.from_payload({"model": spelling}).model == "VGG-D"

    def test_distinct_requests_get_distinct_keys(self):
        base = PartitionRequest.from_payload({"model": "VGG-A"})
        other = PartitionRequest.from_payload({"model": "VGG-A", "batch_size": 64})
        assert base.cache_key() != other.cache_key()

    def test_kind_disambiguates_the_key(self):
        partition = PartitionRequest.from_payload({"model": "VGG-A"})
        simulate = SimulateRequest.from_payload({"model": "VGG-A"})
        assert partition.cache_key() != simulate.cache_key()

    def test_unknown_fields_rejected_with_known_list(self):
        with pytest.raises(SchemaError, match="batchsize"):
            PartitionRequest.from_payload({"model": "VGG-A", "batchsize": 64})
        with pytest.raises(SchemaError, match="known fields: model, batch_size"):
            PartitionRequest.from_payload({"model": "VGG-A", "nope": 1})

    def test_missing_model_rejected(self):
        with pytest.raises(SchemaError, match="'model' is required"):
            PartitionRequest.from_payload({})

    def test_unknown_model_rejected_with_zoo_listing(self):
        with pytest.raises(SchemaError, match="known models"):
            PartitionRequest.from_payload({"model": "resnet-152"})

    def test_non_mapping_body_rejected(self):
        with pytest.raises(SchemaError, match="JSON object"):
            PartitionRequest.from_payload(["VGG-A"])

    def test_every_kernel_backend_is_accepted(self):
        from repro.core.kernels import VALID_BACKENDS

        for backend in VALID_BACKENDS:
            request = PartitionRequest.from_payload(
                {"model": "VGG-A", "backend": backend}
            )
            assert request.backend == backend

    def test_backend_is_part_of_the_cache_key(self):
        numpy_key = PartitionRequest.from_payload({"model": "VGG-A"}).cache_key()
        parallel_key = PartitionRequest.from_payload(
            {"model": "VGG-A", "backend": "compiled-parallel"}
        ).cache_key()
        assert numpy_key != parallel_key

    def test_unknown_backend_rejected(self):
        with pytest.raises(SchemaError, match="cuda"):
            PartitionRequest.from_payload({"model": "VGG-A", "backend": "cuda"})

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({"model": "VGG-A", "batch_size": 0}, "positive"),
            ({"model": "VGG-A", "batch_size": True}, "integer"),
            ({"model": "VGG-A", "batch_size": "big"}, "integer"),
            ({"model": "VGG-A", "num_accelerators": 12}, "power of two"),
            ({"model": "VGG-A", "num_accelerators": 1}, "power of two >= 2"),
            ({"model": "VGG-A", "scaling_mode": "bogus"}, "bogus"),
            ({"model": "VGG-A", "strategies": "dp,zz"}, "zz"),
        ],
    )
    def test_invalid_field_values_rejected(self, payload, match):
        with pytest.raises(SchemaError, match=match):
            PartitionRequest.from_payload(payload)


class TestSimulateRequest:
    def test_topology_canonicalizes(self):
        request = SimulateRequest.from_payload({"model": "SFC", "topology": "Torus"})
        assert request.topology == "torus"

    def test_unknown_topology_rejected(self):
        with pytest.raises(SchemaError, match="htree, torus"):
            SimulateRequest.from_payload({"model": "SFC", "topology": "mesh"})

    def test_single_accelerator_point_allowed(self):
        request = SimulateRequest.from_payload({"model": "SFC", "num_accelerators": 1})
        assert request.num_accelerators == 1

    def test_explicit_analytic_engine_shares_the_legacy_cache_key(self):
        """"analytic" is canonicalized *out* of the payload, so hashes
        minted before the field existed stay valid."""
        legacy = SimulateRequest.from_payload({"model": "SFC"})
        explicit = SimulateRequest.from_payload(
            {"model": "SFC", "sim_engine": "analytic"}
        )
        assert explicit.cache_key() == legacy.cache_key()
        assert "sim_engine" not in legacy.canonical_payload()

    def test_network_engine_is_part_of_the_cache_key(self):
        analytic = SimulateRequest.from_payload({"model": "SFC"})
        network = SimulateRequest.from_payload(
            {"model": "SFC", "sim_engine": "Network"}
        )
        assert network.sim_engine == "network"
        assert network.cache_key() != analytic.cache_key()
        assert network.canonical_payload()["sim_engine"] == "network"

    def test_unknown_engine_rejected(self):
        with pytest.raises(SchemaError, match="analytic, network"):
            SimulateRequest.from_payload({"model": "SFC", "sim_engine": "psychic"})

    def test_engine_does_not_fragment_table_coalescing(self):
        """Both engines price the same compiled cost table, so concurrent
        analytic/network requests for one platform share the compile."""
        analytic = SimulateRequest.from_payload({"model": "SFC"})
        network = SimulateRequest.from_payload(
            {"model": "SFC", "sim_engine": "network"}
        )
        assert network.coalesce_key() == analytic.coalesce_key()


class TestSweepRequest:
    def test_preset_expands_to_its_spec(self):
        request = SweepRequest.from_payload({"preset": "smoke"})
        assert request.to_spec() == PRESETS["smoke"]

    def test_inline_spec_round_trips(self):
        payload = {"spec": {"name": "mine", "models": ["VGG-A"], "batch_sizes": [64]}}
        spec = SweepRequest.from_payload(payload).to_spec()
        assert spec.name == "mine"
        assert spec.points()[0].batch_size == 64

    def test_spec_axes_canonicalize_to_one_key(self):
        sloppy = SweepRequest.from_payload(
            {"spec": {"name": "mine", "models": ["vgg_a"], "scaling_modes": ["UNIFORM"]}}
        )
        canonical = SweepRequest.from_payload(
            {"spec": {"name": "mine", "models": ["VGG-A"], "scaling_modes": ["uniform"]}}
        )
        assert sloppy == canonical
        assert sloppy.cache_key() == canonical.cache_key()

    def test_preset_and_spec_are_mutually_exclusive(self):
        with pytest.raises(SchemaError, match="exactly one"):
            SweepRequest.from_payload({})
        with pytest.raises(SchemaError, match="exactly one"):
            SweepRequest.from_payload(
                {"preset": "smoke", "spec": {"name": "x", "models": ["SFC"]}}
            )

    def test_unknown_preset_lists_the_presets(self):
        with pytest.raises(SchemaError, match="smoke"):
            SweepRequest.from_payload({"preset": "gigantic"})

    def test_invalid_inline_spec_reports_the_cause(self):
        with pytest.raises(SchemaError, match="invalid sweep spec"):
            SweepRequest.from_payload({"spec": {"name": "x"}})
        with pytest.raises(SchemaError, match="known models"):
            SweepRequest.from_payload({"spec": {"name": "x", "models": ["nope"]}})
