"""Cost-model separation at the service boundary.

Profiled and analytic requests must never share a cached response: the
``cost_model`` field is part of the canonical payload, so it lands in the
SHA-256 cache key and in the cross-request coalesce key.  The daemon also
refuses caller-named profile *paths* -- only shipped pack names -- so a
client cannot make the server read arbitrary files.
"""

from __future__ import annotations

import json

import pytest

from repro.service.app import HyParService
from repro.service.schemas import PartitionRequest, SchemaError, SimulateRequest

PROFILED = "profiled:slow-interconnect"


def _post(service: HyParService, path: str, payload) -> tuple[int, dict]:
    status, body = service.handle("POST", path, json.dumps(payload).encode())
    return status, json.loads(body)


def _healthz(service: HyParService) -> dict:
    _status, body = service.handle("GET", "/healthz", None)
    return json.loads(body)


class TestSchemaSeparation:
    def test_same_body_different_cost_model_different_hash(self):
        base = PartitionRequest.from_payload({"model": "Lenet-c"})
        profiled = PartitionRequest.from_payload(
            {"model": "Lenet-c", "cost_model": PROFILED}
        )
        assert base.cache_key() != profiled.cache_key()
        assert base.coalesce_key() != profiled.coalesce_key()

    def test_simulate_requests_separate_too(self):
        base = SimulateRequest.from_payload({"model": "Lenet-c"})
        profiled = SimulateRequest.from_payload(
            {"model": "Lenet-c", "cost_model": PROFILED}
        )
        assert base.cache_key() != profiled.cache_key()

    def test_analytic_is_the_omitted_default(self):
        explicit = PartitionRequest.from_payload(
            {"model": "Lenet-c", "cost_model": "analytic"}
        )
        omitted = PartitionRequest.from_payload({"model": "Lenet-c"})
        assert explicit.cache_key() == omitted.cache_key()

    def test_unknown_pack_is_a_schema_error_naming_the_shipped_packs(self):
        with pytest.raises(SchemaError, match="slow-interconnect"):
            PartitionRequest.from_payload(
                {"model": "Lenet-c", "cost_model": "profiled:nope"}
            )

    def test_file_paths_are_rejected_by_the_daemon(self, tmp_path):
        # The CLI accepts profiled:<path>; the service must not -- a
        # remote caller would be naming files on the server's disk.
        path = tmp_path / "pack.json"
        path.write_text("{}")
        with pytest.raises(SchemaError, match="unknown profile pack"):
            PartitionRequest.from_payload(
                {"model": "Lenet-c", "cost_model": f"profiled:{path}"}
            )


class TestServedSeparation:
    def test_no_cross_served_bytes_between_providers(self):
        body = {"model": "Lenet-c", "batch_size": 64, "num_accelerators": 4}
        with HyParService(cache_size=8) as service:
            _status, analytic = _post(service, "/partition", body)
            _status, profiled = _post(
                service, "/partition", {**body, "cost_model": PROFILED}
            )
            # Both were compulsory misses: the profiled request did not
            # get served the analytic bytes (or vice versa).
            stats = _healthz(service)["result_cache"]
            assert stats["misses"] == 2
            assert stats["hits"] == 0
        assert analytic["request"]["cost_model"] == "analytic"
        assert profiled["request"]["cost_model"] == PROFILED
        # And the answers genuinely differ: this is the flip scenario.
        assert [level["assignment"] for level in analytic["levels"]] == [
            ["dp", "dp", "mp", "mp"], ["dp", "dp", "mp", "mp"],
        ]
        assert [level["assignment"] for level in profiled["levels"]] == [
            ["dp", "dp", "dp", "dp"], ["dp", "dp", "dp", "dp"],
        ]

    def test_repeated_profiled_requests_hit_their_own_entry(self):
        body = {
            "model": "Lenet-c", "batch_size": 64, "num_accelerators": 4,
            "cost_model": PROFILED,
        }
        with HyParService(cache_size=8) as service:
            _status, first = _post(service, "/partition", body)
            _status, again = _post(service, "/partition", body)
            assert _healthz(service)["result_cache"]["hits"] == 1
        assert first == again

    def test_simulate_carries_the_provider_into_the_point_row(self):
        with HyParService(cache_size=8) as service:
            _status, body = _post(
                service,
                "/simulate",
                {
                    "model": "Lenet-c", "batch_size": 64,
                    "num_accelerators": 4, "cost_model": PROFILED,
                },
            )
        assert body["request"]["cost_model"] == PROFILED
        assert body["row"]["cost_model"] == PROFILED


class TestServerDefaultCostModel:
    def test_healthz_reports_default_and_shipped_packs(self):
        with HyParService(cache_size=2) as service:
            health = _healthz(service)
        assert health["cost_models"]["default"] == "analytic"
        assert "slow-interconnect" in health["cost_models"]["profiles"]

    def test_default_applies_to_requests_that_omit_the_field(self):
        body = {"model": "Lenet-c", "batch_size": 64, "num_accelerators": 4}
        with HyParService(cache_size=8, default_cost_model=PROFILED) as service:
            assert _healthz(service)["cost_models"]["default"] == PROFILED
            _status, served = _post(service, "/partition", body)
            # The injected default is part of the canonical request, so an
            # explicit spelling shares the same cache entry.
            _status, explicit = _post(
                service, "/partition", {**body, "cost_model": PROFILED}
            )
            assert _healthz(service)["result_cache"]["hits"] == 1
        assert served["request"]["cost_model"] == PROFILED
        assert served == explicit
        assert [level["assignment"] for level in served["levels"]] == [
            ["dp", "dp", "dp", "dp"], ["dp", "dp", "dp", "dp"],
        ]

    def test_explicit_analytic_overrides_a_profiled_default(self):
        body = {
            "model": "Lenet-c", "batch_size": 64, "num_accelerators": 4,
            "cost_model": "analytic",
        }
        with HyParService(cache_size=8, default_cost_model=PROFILED) as service:
            _status, served = _post(service, "/partition", body)
        assert served["request"]["cost_model"] == "analytic"
        assert [level["assignment"] for level in served["levels"]] == [
            ["dp", "dp", "mp", "mp"], ["dp", "dp", "mp", "mp"],
        ]

    def test_bad_default_is_rejected_at_startup(self):
        with pytest.raises(SchemaError, match="unknown profile pack"):
            HyParService(default_cost_model="profiled:nope")
