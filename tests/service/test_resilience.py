"""Chaos tests: client retries, request deadlines, stale serving, /replan.

Each test that needs HTTP spins up its own short-lived server with a
:class:`FaultPlan` installed, so the injected fault schedule starts from
ordinal zero; everything else drives :meth:`HyParService.handle`
in-process.
"""

from __future__ import annotations

import contextlib
import http.client
import json
import threading

import pytest

from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.replan import run_replan
from repro.resilience.traces import synthesize_trace
from repro.service import HyParService, ServiceClient, build_server
from repro.service.client import ServiceClientError
from repro.service.schemas import ReplanRequest
from repro.sweep.artifacts import payload_to_json
from repro.sweep.engine import SweepEngine

PARTITION_FIELDS = {"model": "SFC", "batch_size": 64, "num_accelerators": 4}

REPLAN_FIELDS = {
    "model": "Lenet-c",
    "preset": "spot",
    "seed": 7,
    "num_events": 6,
    "num_nodes": 16,
    "batch_size": 64,
}


@contextlib.contextmanager
def _live_server(**kwargs):
    server = build_server(port=0, **kwargs)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    try:
        yield server
    finally:
        server.close()
        thread.join(timeout=5.0)


def _post(service: HyParService, path: str, payload) -> tuple[int, bytes]:
    return service.handle("POST", path, json.dumps(payload).encode())


class TestClientRetry:
    def test_retry_recovers_from_a_dropped_connection(self):
        plan = FaultPlan.preset("connection-drop")
        with _live_server(fault_plan=plan) as server:
            with ServiceClient("127.0.0.1", server.port, backoff=0.01) as client:
                health = client.healthz()
        assert health["status"] == "ok"
        assert client.retried >= 1
        assert health["faults"]["dropped"] == 1

    def test_delayed_connection_still_answers(self):
        plan = FaultPlan.preset("connection-delay")
        with _live_server(fault_plan=plan) as server:
            with ServiceClient("127.0.0.1", server.port) as client:
                health = client.healthz()
        assert health["status"] == "ok"
        assert client.retried == 0
        assert health["faults"]["delayed"] == 1

    def test_a_received_4xx_is_never_retried(self):
        with _live_server() as server:
            with ServiceClient("127.0.0.1", server.port) as client:
                with pytest.raises(ServiceClientError) as excinfo:
                    client.partition(model="no-such-net")
                assert excinfo.value.status == 400
                assert client.retried == 0

    def test_non_idempotent_requests_do_not_retry_after_send(self):
        plan = FaultPlan(drop_requests=(0,))
        with _live_server(fault_plan=plan) as server:
            with ServiceClient("127.0.0.1", server.port, backoff=0.01) as client:
                with pytest.raises((http.client.HTTPException, OSError)):
                    client.request("GET", "/healthz", idempotent=False)
                assert client.retried == 0

    def test_exhausted_retries_raise_the_last_transport_error(self):
        plan = FaultPlan(drop_requests=(0, 1, 2))
        with _live_server(fault_plan=plan) as server:
            with ServiceClient(
                "127.0.0.1", server.port, retries=3, backoff=0.01
            ) as client:
                with pytest.raises((http.client.HTTPException, OSError)):
                    client.healthz()
                assert client.retried == 2

    def test_client_parameter_validation(self):
        with pytest.raises(ValueError, match="retries"):
            ServiceClient("127.0.0.1", 1, retries=0)
        with pytest.raises(ValueError, match="backoff"):
            ServiceClient("127.0.0.1", 1, backoff=-0.1)

    def test_backoff_grows_exponentially_and_caps(self):
        client = ServiceClient(
            "127.0.0.1", 1, backoff=0.1, max_backoff=0.3, jitter=0.0
        )
        sleeps = []
        client._sleep_backoff = lambda attempt: sleeps.append(  # type: ignore[method-assign]
            min(client.max_backoff, client.backoff * 2 ** (attempt - 1))
        )
        for attempt in (1, 2, 3, 4):
            client._sleep_backoff(attempt)
        assert sleeps == [0.1, 0.2, 0.3, 0.3]


class TestRequestDeadline:
    def test_overrun_answers_504_and_closes_the_connection(self):
        plan = FaultPlan(compute_delays=(0,), compute_delay_seconds=5.0)
        with _live_server(request_timeout=0.2, fault_plan=plan) as server:
            connection = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=10.0
            )
            try:
                connection.request(
                    "POST",
                    "/partition",
                    body=json.dumps(PARTITION_FIELDS).encode(),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                body = json.loads(response.read())
                assert response.status == 504
                assert response.getheader("Connection") == "close"
                assert "deadline" in body["error"]
            finally:
                connection.close()
            # The daemon stays healthy: a fresh, fast request succeeds and
            # the timeout is tallied.
            with ServiceClient("127.0.0.1", server.port) as client:
                result = client.partition(
                    model="SFC", batch_size=32, num_accelerators=4
                )
                assert result["model"] == "SFC"
                health = client.healthz()
        assert health["requests"]["timeouts"] == 1
        assert health["requests"]["stale_served"] == 0

    def test_fast_requests_are_unaffected_by_the_deadline(self):
        with _live_server(request_timeout=30.0) as server:
            with ServiceClient("127.0.0.1", server.port) as client:
                assert client.healthz()["requests"]["timeouts"] == 0

    def test_non_positive_deadline_is_rejected(self):
        with pytest.raises(ValueError, match="request_timeout"):
            build_server(port=0, request_timeout=0)


def _identity(x: int) -> int:
    """Module-level so the process pool can pickle it."""
    return x


class TestDegradation:
    def test_healthz_reports_a_degraded_pool(self):
        from repro.resilience.faults import faulty_map

        engine = SweepEngine(workers=2)
        try:
            with pytest.warns(RuntimeWarning, match="process pool failed"):
                faulty_map(engine, _identity, [1, 2, 3], FaultPlan(kill_tasks=(0,)))
            service = HyParService(engine=engine)
            status, body = service.handle("GET", "/healthz", None)
            health = json.loads(body)
            assert status == 200
            assert health["degraded"] is True
            assert health["pool_active"] is False
        finally:
            engine.close()

    def test_poisoned_entry_recovers_through_the_stale_store(self):
        # Store ordinal 0 is poisoned; the recompute triggered by the
        # integrity failure (compute ordinal 1) is killed too, so the
        # service falls back to the stale copy; compute ordinal 2 then
        # repairs the cache with identical bytes.
        plan = FaultPlan(poison_stores=(0,), compute_errors=(1,))
        service = HyParService(fault_injector=FaultInjector(plan))
        with service:
            status, original = _post(service, "/partition", PARTITION_FIELDS)
            assert status == 200
            status, stale = _post(service, "/partition", PARTITION_FIELDS)
            assert status == 200
            assert stale == original
            assert service.stale_served == 1
            assert service.result_cache.stats()["poisoned"] == 1
            status, repaired = _post(service, "/partition", PARTITION_FIELDS)
            assert status == 200
            assert repaired == original
            assert service.stale_served == 1

    def test_compute_failure_without_a_stale_copy_is_a_500(self):
        plan = FaultPlan(compute_errors=(0,))
        service = HyParService(fault_injector=FaultInjector(plan))
        with service:
            status, body = _post(service, "/partition", PARTITION_FIELDS)
            assert status == 500
            assert "FaultInjected" in json.loads(body)["error"]
            # The schedule has passed; the same request now succeeds.
            status, _ = _post(service, "/partition", PARTITION_FIELDS)
            assert status == 200


class TestReplanEndpoint:
    @pytest.fixture(scope="class")
    def service(self):
        with HyParService() as service:
            yield service

    def test_response_bytes_match_the_offline_replan(self, service):
        status, body = _post(service, "/replan", REPLAN_FIELDS)
        assert status == 200
        request = ReplanRequest.from_payload(REPLAN_FIELDS)
        offline = run_replan(request.to_trace(), request.to_config())
        assert body == payload_to_json(offline.to_payload()).encode()

    def test_preset_provenance_never_leaks(self, service):
        status, body = _post(service, "/replan", REPLAN_FIELDS)
        payload = json.loads(body)
        assert status == 200
        assert payload["trace"]["preset"] is None
        assert payload["trace"]["seed"] is None
        assert payload["config"]["policy"] == "every-event"

    def test_preset_and_inline_trace_share_one_cache_entry(self, service):
        status, preset_body = _post(service, "/replan", REPLAN_FIELDS)
        assert status == 200
        trace = synthesize_trace(
            "spot", num_nodes=16, seed=7, num_events=6
        )
        inline = {
            "model": "Lenet-c",
            "trace": [event.to_json() for event in trace.events],
            "num_nodes": 16,
            "horizon": trace.horizon,
            "batch_size": 64,
        }
        misses_before = service.result_cache.stats()["misses"]
        status, inline_body = _post(service, "/replan", inline)
        assert status == 200
        assert inline_body == preset_body
        assert service.result_cache.stats()["misses"] == misses_before

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({"model": "Lenet-c"}, "exactly one of"),
            ({"model": "Lenet-c", "preset": "spot", "trace": []}, "exactly one of"),
            ({"model": "Lenet-c", "preset": "blizzard"}, "unknown trace preset"),
            (
                {"model": "Lenet-c", "trace": [], "seed": 3},
                "only applies to preset traces",
            ),
            ({"model": "Lenet-c", "preset": "spot", "num_nodes": 1}, "num_nodes"),
            ({"model": "Lenet-c", "preset": "spot", "policy": "never"}, "policy"),
            (
                {
                    "model": "Lenet-c",
                    "trace": [{"t": 1.0, "event": "crash", "nodes": [0]}],
                },
                "unknown trace event",
            ),
        ],
    )
    def test_bad_bodies_answer_400(self, service, payload, fragment):
        status, body = _post(service, "/replan", payload)
        assert status == 400
        assert fragment in json.loads(body)["error"]
