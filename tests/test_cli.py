"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_models_command_parses(self):
        args = build_parser().parse_args(["models"])
        assert args.command == "models"

    def test_partition_requires_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["partition"])

    def test_common_options(self):
        args = build_parser().parse_args(
            ["partition", "AlexNet", "--batch-size", "64", "--accelerators", "4"]
        )
        assert args.batch_size == 64
        assert args.accelerators == 4

    def test_scaling_mode_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["partition", "AlexNet", "--scaling-mode", "bogus"]
            )

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_models_lists_all_networks(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("SFC", "SCONV", "Lenet-c", "AlexNet", "VGG-E"):
            assert name in out

    def test_partition_prints_parallelism_lists(self, capsys):
        assert main(["partition", "Lenet-c"]) == 0
        out = capsys.readouterr().out
        assert "H1" in out and "H4" in out
        assert "dp" in out and "mp" in out

    def test_partition_respects_accelerator_count(self, capsys):
        assert main(["partition", "Lenet-c", "--accelerators", "4"]) == 0
        out = capsys.readouterr().out
        assert "4 accelerators" in out
        assert "H3" not in out

    def test_compare_single_model(self, capsys):
        assert main(["compare", "Lenet-c", "--accelerators", "4", "--batch-size", "64"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "Figure 7" in out
        assert "Figure 8" in out
        assert "Lenet-c" in out

    def test_scalability_command(self, capsys):
        assert (
            main(
                [
                    "scalability",
                    "--model",
                    "Lenet-c",
                    "--sizes",
                    "1,2,4",
                    "--batch-size",
                    "64",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Figure 11" in out

    def test_topology_command(self, capsys):
        assert main(["topology", "Lenet-c", "--batch-size", "64"]) == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out
        assert "Torus" in out and "H Tree" in out

    def test_placement_command(self, capsys):
        assert main(["placement", "Lenet-c", "--accelerators", "4"]) == 0
        out = capsys.readouterr().out
        assert "replicated" in out
        assert "footprint" in out

    def test_trace_command(self, capsys):
        assert main(["trace", "Lenet-c", "--accelerators", "4", "--batch-size", "64"]) == 0
        out = capsys.readouterr().out
        assert "transfers" in out
        assert "by phase" in out
        assert "H1" in out

    def test_unknown_model_raises_keyerror(self):
        with pytest.raises(KeyError):
            main(["partition", "resnet-50"])


class TestSweepCommand:
    def test_list_presets(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        for preset in ("fig6", "fig12", "smoke", "batch"):
            assert preset in out

    def test_missing_spec_errors(self, capsys):
        assert main(["sweep"]) == 2
        assert "required" in capsys.readouterr().err

    def test_smoke_preset_prints_every_point(self, capsys):
        assert main(["sweep", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "smoke: 4 points" in out
        assert out.count("Lenet-c/b") == 2
        assert out.count("Cifar-c/b") == 2

    def test_spec_file_with_artifacts(self, tmp_path, capsys):
        import json

        spec_path = tmp_path / "mini.json"
        spec_path.write_text(
            json.dumps(
                {
                    "name": "mini",
                    "models": ["Lenet-c"],
                    "batch_sizes": [64],
                    "array_sizes": [4],
                }
            )
        )
        out_dir = tmp_path / "artifacts"
        assert main(["sweep", str(spec_path), "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "artifacts:" in out
        payload = json.loads((out_dir / "mini.json").read_text())
        assert payload["spec"]["name"] == "mini"
        assert len(payload["rows"]) == 1
        assert (out_dir / "mini.csv").read_text().startswith("index,model,")

    def test_study_out_flag_writes_artifacts(self, tmp_path, capsys):
        import json

        out_dir = tmp_path / "study"
        assert (
            main(
                [
                    "scalability",
                    "--model",
                    "Lenet-c",
                    "--sizes",
                    "1,4",
                    "--batch-size",
                    "64",
                    "--out",
                    str(out_dir),
                ]
            )
            == 0
        )
        assert "artifacts:" in capsys.readouterr().out
        payload = json.loads((out_dir / "scalability.json").read_text())
        assert payload["study"] == "scalability"
        assert len(payload["rows"]) == 2
        assert (out_dir / "scalability.csv").read_text().startswith("num_accelerators,")

    def test_workers_flag_matches_serial_output(self, capsys):
        assert main(["sweep", "smoke"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["sweep", "smoke", "--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out
