"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_models_command_parses(self):
        args = build_parser().parse_args(["models"])
        assert args.command == "models"

    def test_partition_requires_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["partition"])

    def test_common_options(self):
        args = build_parser().parse_args(
            ["partition", "AlexNet", "--batch-size", "64", "--accelerators", "4"]
        )
        assert args.batch_size == 64
        assert args.accelerators == 4

    def test_scaling_mode_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["partition", "AlexNet", "--scaling-mode", "bogus"]
            )

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_models_lists_all_networks(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("SFC", "SCONV", "Lenet-c", "AlexNet", "VGG-E"):
            assert name in out

    def test_partition_prints_parallelism_lists(self, capsys):
        assert main(["partition", "Lenet-c"]) == 0
        out = capsys.readouterr().out
        assert "H1" in out and "H4" in out
        assert "dp" in out and "mp" in out

    def test_partition_respects_accelerator_count(self, capsys):
        assert main(["partition", "Lenet-c", "--accelerators", "4"]) == 0
        out = capsys.readouterr().out
        assert "4 accelerators" in out
        assert "H3" not in out

    def test_compare_single_model(self, capsys):
        assert main(["compare", "Lenet-c", "--accelerators", "4", "--batch-size", "64"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "Figure 7" in out
        assert "Figure 8" in out
        assert "Lenet-c" in out

    def test_scalability_command(self, capsys):
        assert (
            main(
                [
                    "scalability",
                    "--model",
                    "Lenet-c",
                    "--sizes",
                    "1,2,4",
                    "--batch-size",
                    "64",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Figure 11" in out

    def test_topology_command(self, capsys):
        assert main(["topology", "Lenet-c", "--batch-size", "64"]) == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out
        assert "Torus" in out and "H Tree" in out

    def test_placement_command(self, capsys):
        assert main(["placement", "Lenet-c", "--accelerators", "4"]) == 0
        out = capsys.readouterr().out
        assert "replicated" in out
        assert "footprint" in out

    def test_trace_command(self, capsys):
        assert main(["trace", "Lenet-c", "--accelerators", "4", "--batch-size", "64"]) == 0
        out = capsys.readouterr().out
        assert "transfers" in out
        assert "by phase" in out
        assert "H1" in out

    def test_unknown_model_raises_keyerror(self):
        with pytest.raises(KeyError):
            main(["partition", "resnet-50"])


class TestSweepCommand:
    def test_list_presets(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        for preset in ("fig6", "fig12", "smoke", "batch"):
            assert preset in out

    def test_missing_spec_errors(self, capsys):
        assert main(["sweep"]) == 2
        assert "required" in capsys.readouterr().err

    def test_smoke_preset_prints_every_point(self, capsys):
        assert main(["sweep", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "smoke: 4 points" in out
        assert out.count("Lenet-c/b") == 2
        assert out.count("Cifar-c/b") == 2

    def test_spec_file_with_artifacts(self, tmp_path, capsys):
        import json

        spec_path = tmp_path / "mini.json"
        spec_path.write_text(
            json.dumps(
                {
                    "name": "mini",
                    "models": ["Lenet-c"],
                    "batch_sizes": [64],
                    "array_sizes": [4],
                }
            )
        )
        out_dir = tmp_path / "artifacts"
        assert main(["sweep", str(spec_path), "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "artifacts:" in out
        payload = json.loads((out_dir / "mini.json").read_text())
        assert payload["spec"]["name"] == "mini"
        assert len(payload["rows"]) == 1
        assert (out_dir / "mini.csv").read_text().startswith("index,model,")

    def test_study_out_flag_writes_artifacts(self, tmp_path, capsys):
        import json

        out_dir = tmp_path / "study"
        assert (
            main(
                [
                    "scalability",
                    "--model",
                    "Lenet-c",
                    "--sizes",
                    "1,4",
                    "--batch-size",
                    "64",
                    "--out",
                    str(out_dir),
                ]
            )
            == 0
        )
        assert "artifacts:" in capsys.readouterr().out
        payload = json.loads((out_dir / "scalability.json").read_text())
        assert payload["study"] == "scalability"
        assert len(payload["rows"]) == 2
        assert (out_dir / "scalability.csv").read_text().startswith("num_accelerators,")

    def test_workers_flag_matches_serial_output(self, capsys):
        assert main(["sweep", "smoke"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["sweep", "smoke", "--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out


class TestSimulateCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["simulate", "Lenet-c"])
        assert args.strategy == "hypar"
        assert args.topology == "htree"
        assert args.sim_engine == "analytic"

    def test_engine_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "Lenet-c", "--sim-engine", "psychic"]
            )

    def test_dp_baseline_on_torus(self, capsys):
        assert (
            main(
                [
                    "simulate", "Lenet-c", "--accelerators", "4",
                    "--batch-size", "64", "--strategy", "dp",
                    "--topology", "torus", "--sim-engine", "network",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Data Parallelism on torus" in out
        assert "network engine" in out
        assert "dp-dp-dp-dp" in out

    def test_sweep_engine_override_runs_the_grid_through_the_network(self, capsys):
        assert main(["sweep", "smoke", "--sim-engine", "network"]) == 0
        out = capsys.readouterr().out
        # Every point label carries the non-default engine segment.
        assert out.count("/network") == 4

    def test_sweep_default_labels_stay_engine_free(self, capsys):
        assert main(["sweep", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "/network" not in out
        assert "/analytic" not in out


class TestReplanCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["replan"])
        assert args.model == "Lenet-c"
        assert args.trace is None
        assert args.preset == "spot"
        assert args.seed == 7
        assert args.events == 10
        assert args.nodes == 16
        assert args.policy == "every-event"
        assert args.horizon_steps == 500
        assert args.out is None
        assert args.emit_trace is None

    def test_policy_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replan", "--policy", "sometimes"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replan", "--preset", "blizzard"])

    def test_replan_prints_the_timeline(self, capsys):
        assert main(["replan", "--events", "4", "--batch-size", "64"]) == 0
        out = capsys.readouterr().out
        assert "every-event policy over 4 events on 16 nodes" in out
        assert "mean utilization" in out
        assert "warm-start DP" in out

    def test_artifacts_are_run_to_run_identical(self, tmp_path, capsys):
        command = [
            "replan", "--events", "4", "--batch-size", "64", "--seed", "3",
        ]
        first_dir = tmp_path / "first"
        second_dir = tmp_path / "second"
        assert main(command + ["--out", str(first_dir)]) == 0
        assert main(command + ["--out", str(second_dir)]) == 0
        capsys.readouterr()
        first = (first_dir / "replan.json").read_bytes()
        assert first == (second_dir / "replan.json").read_bytes()
        assert (first_dir / "replan.csv").read_bytes() == (
            second_dir / "replan.csv"
        ).read_bytes()
        import json

        payload = json.loads(first)
        assert payload["config"]["model"] == "Lenet-c"
        assert payload["trace"]["num_events"] == 4

    def test_emit_trace_round_trips_through_the_trace_flag(self, tmp_path, capsys):
        trace_path = tmp_path / "churn.jsonl"
        assert (
            main(
                [
                    "replan", "--events", "3", "--batch-size", "64",
                    "--emit-trace", str(trace_path),
                ]
            )
            == 0
        )
        synthesized_out = capsys.readouterr().out
        assert trace_path.exists()
        assert (
            main(["replan", "--trace", str(trace_path), "--batch-size", "64"]) == 0
        )
        replayed_out = capsys.readouterr().out
        # The saved trace replays to the same timeline the synthesis ran.
        assert replayed_out == synthesized_out.replace(
            f"trace: {trace_path}\n", ""
        )


class TestServeParser:
    def test_resilience_flags_default_off(self):
        args = build_parser().parse_args(["serve"])
        assert args.request_timeout is None
        assert args.fault_preset is None
        assert args.fault_seed == 0

    def test_request_timeout_parses_as_seconds(self):
        args = build_parser().parse_args(["serve", "--request-timeout", "2.5"])
        assert args.request_timeout == 2.5

    def test_fault_preset_choices_enforced(self):
        args = build_parser().parse_args(["serve", "--fault-preset", "cache-poison"])
        assert args.fault_preset == "cache-poison"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--fault-preset", "meteor"])
