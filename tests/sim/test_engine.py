"""Tests for the discrete-event scheduling engine."""

import pytest

from repro.sim.engine import EventDrivenEngine, SimulationError


class TestBasicScheduling:
    def test_single_task(self):
        engine = EventDrivenEngine()
        engine.add_task("only", 2.0)
        schedule = engine.run()
        assert schedule.makespan == pytest.approx(2.0)
        assert schedule.task("only").start == 0.0

    def test_independent_tasks_without_resources_run_in_parallel(self):
        engine = EventDrivenEngine()
        engine.add_task("a", 3.0)
        engine.add_task("b", 5.0)
        schedule = engine.run()
        assert schedule.makespan == pytest.approx(5.0)
        assert schedule.task("a").start == 0.0
        assert schedule.task("b").start == 0.0

    def test_empty_graph(self):
        assert EventDrivenEngine().run().makespan == 0.0

    def test_zero_duration_task(self):
        engine = EventDrivenEngine()
        engine.add_task("noop", 0.0)
        assert engine.run().makespan == 0.0


class TestDependencies:
    def test_chain_is_serialised(self):
        engine = EventDrivenEngine()
        a = engine.add_task("a", 1.0)
        b = engine.add_task("b", 2.0, deps=(a,))
        engine.add_task("c", 3.0, deps=(b,))
        schedule = engine.run()
        assert schedule.makespan == pytest.approx(6.0)
        assert schedule.task("b").start == pytest.approx(1.0)
        assert schedule.task("c").start == pytest.approx(3.0)

    def test_fan_in_waits_for_slowest_dependency(self):
        engine = EventDrivenEngine()
        fast = engine.add_task("fast", 1.0)
        slow = engine.add_task("slow", 4.0)
        engine.add_task("join", 1.0, deps=(fast, slow))
        schedule = engine.run()
        assert schedule.task("join").start == pytest.approx(4.0)
        assert schedule.makespan == pytest.approx(5.0)

    def test_fan_out_runs_children_concurrently(self):
        engine = EventDrivenEngine()
        root = engine.add_task("root", 1.0)
        engine.add_task("left", 2.0, deps=(root,))
        engine.add_task("right", 3.0, deps=(root,))
        schedule = engine.run()
        assert schedule.task("left").start == pytest.approx(1.0)
        assert schedule.task("right").start == pytest.approx(1.0)
        assert schedule.makespan == pytest.approx(4.0)

    def test_unknown_dependency_rejected(self):
        engine = EventDrivenEngine()
        other_engine = EventDrivenEngine()
        foreign = other_engine.add_task("foreign", 1.0)
        with pytest.raises(SimulationError):
            engine.add_task("bad", 1.0, deps=(foreign,))


class TestResources:
    def test_shared_resource_serialises_tasks(self):
        engine = EventDrivenEngine()
        link = engine.resource("link")
        engine.add_task("a", 2.0, resources=(link,))
        engine.add_task("b", 3.0, resources=(link,))
        schedule = engine.run()
        assert schedule.makespan == pytest.approx(5.0)

    def test_distinct_resources_do_not_interfere(self):
        engine = EventDrivenEngine()
        engine.add_task("a", 2.0, resources=(engine.resource("r1"),))
        engine.add_task("b", 3.0, resources=(engine.resource("r2"),))
        assert engine.run().makespan == pytest.approx(3.0)

    def test_resource_registry_returns_same_object(self):
        engine = EventDrivenEngine()
        assert engine.resource("pu") is engine.resource("pu")

    def test_task_claiming_two_resources_blocks_both(self):
        engine = EventDrivenEngine()
        r1, r2 = engine.resource("r1"), engine.resource("r2")
        engine.add_task("both", 5.0, resources=(r1, r2))
        engine.add_task("on_r1", 1.0, resources=(r1,))
        engine.add_task("on_r2", 1.0, resources=(r2,))
        schedule = engine.run()
        assert schedule.makespan == pytest.approx(6.0)

    def test_resource_plus_dependency(self):
        engine = EventDrivenEngine()
        link = engine.resource("link")
        a = engine.add_task("a", 2.0, resources=(link,))
        engine.add_task("b", 1.0, resources=(link,), deps=(a,))
        engine.add_task("c", 4.0, resources=(link,))
        schedule = engine.run()
        # All three share the link: total busy time is 7 regardless of order.
        assert schedule.makespan == pytest.approx(7.0)


class TestValidationAndReporting:
    def test_duplicate_task_names_rejected(self):
        engine = EventDrivenEngine()
        engine.add_task("x", 1.0)
        with pytest.raises(ValueError):
            engine.add_task("x", 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            EventDrivenEngine().add_task("bad", -1.0)

    def test_missing_task_lookup_raises(self):
        engine = EventDrivenEngine()
        engine.add_task("x", 1.0)
        schedule = engine.run()
        with pytest.raises(KeyError):
            schedule.task("y")

    def test_tags_preserved_and_queryable(self):
        engine = EventDrivenEngine()
        engine.add_task("a", 1.0, tags={"phase": "forward"})
        engine.add_task("b", 2.0, tags={"phase": "forward"})
        engine.add_task("c", 4.0, tags={"phase": "backward"})
        schedule = engine.run()
        assert len(schedule.by_tag("phase", "forward")) == 2
        assert schedule.total_duration_by_tag("phase", "forward") == pytest.approx(3.0)
        assert schedule.total_duration_by_tag("phase", "backward") == pytest.approx(4.0)

    def test_scheduled_task_duration(self):
        engine = EventDrivenEngine()
        engine.add_task("a", 2.5)
        task = engine.run().task("a")
        assert task.duration == pytest.approx(2.5)


class TestLargerGraphs:
    def test_diamond_with_resources(self):
        engine = EventDrivenEngine()
        pu = engine.resource("pu")
        source = engine.add_task("source", 1.0, resources=(pu,))
        left = engine.add_task("left", 2.0, resources=(pu,), deps=(source,))
        right = engine.add_task("right", 2.0, resources=(pu,), deps=(source,))
        engine.add_task("sink", 1.0, resources=(pu,), deps=(left, right))
        schedule = engine.run()
        # Everything shares one resource: 1 + 2 + 2 + 1.
        assert schedule.makespan == pytest.approx(6.0)

    def test_hundreds_of_tasks(self):
        engine = EventDrivenEngine()
        previous = None
        for index in range(500):
            deps = (previous,) if previous is not None else ()
            previous = engine.add_task(f"t{index}", 0.01, deps=deps)
        assert engine.run().makespan == pytest.approx(5.0)
