"""Tests for the training-step report records."""

import pytest

from repro.sim.metrics import EnergyBreakdown, PhaseBreakdown, TrainingStepReport


def _report(step_seconds=2.0, comm_joules=1.0, comm_bytes=4e9, strategy="HyPar"):
    return TrainingStepReport(
        model_name="toy",
        strategy_name=strategy,
        topology_name="h-tree",
        num_accelerators=16,
        batch_size=256,
        step_seconds=step_seconds,
        energy=EnergyBreakdown(
            compute_joules=10.0,
            sram_joules=5.0,
            dram_joules=3.0,
            communication_joules=comm_joules,
        ),
        communication_bytes=comm_bytes,
        phase_seconds={
            "forward": PhaseBreakdown(compute_seconds=0.5, communication_seconds=0.2),
            "backward": PhaseBreakdown(compute_seconds=0.5, communication_seconds=0.1),
            "gradient": PhaseBreakdown(compute_seconds=0.5, communication_seconds=0.2),
        },
        level_communication_bytes=(1e9, 1e9, 1e9, 1e9),
    )


class TestEnergyBreakdown:
    def test_total(self):
        energy = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
        assert energy.total_joules == pytest.approx(10.0)

    def test_parallelism_independent_share(self):
        energy = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
        assert energy.parallelism_independent_joules == pytest.approx(6.0)


class TestPhaseBreakdown:
    def test_total(self):
        assert PhaseBreakdown(1.0, 0.5).total_seconds == pytest.approx(1.5)


class TestTrainingStepReport:
    def test_energy_total(self):
        assert _report().energy_joules == pytest.approx(19.0)

    def test_throughput(self):
        assert _report(step_seconds=2.0).throughput_samples_per_second == pytest.approx(128.0)

    def test_communication_gb(self):
        assert _report(comm_bytes=4e9).communication_gb == pytest.approx(4.0)

    def test_compute_and_communication_seconds(self):
        report = _report()
        assert report.compute_seconds == pytest.approx(1.5)
        assert report.communication_seconds == pytest.approx(0.5)

    def test_speedup_over(self):
        fast = _report(step_seconds=1.0)
        slow = _report(step_seconds=4.0, strategy="Data Parallelism")
        assert fast.speedup_over(slow) == pytest.approx(4.0)
        assert slow.speedup_over(fast) == pytest.approx(0.25)

    def test_energy_efficiency_over(self):
        efficient = _report(comm_joules=1.0)
        wasteful = _report(comm_joules=19.0, strategy="Model Parallelism")
        assert efficient.energy_efficiency_over(wasteful) == pytest.approx(37.0 / 19.0)

    def test_summary_mentions_key_fields(self):
        summary = _report().summary()
        assert "toy" in summary
        assert "HyPar" in summary
        assert "h-tree" in summary
