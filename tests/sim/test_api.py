"""Tests for the redesigned simulation API (`repro.sim.api`)."""

import pytest

from repro.accelerator.array import ArrayConfig
from repro.core.baselines import data_parallelism
from repro.sim import SIM_ENGINES, SimulationSpec, get_backend, simulate
from repro.sim.backend import validate_sim_engine
from repro.sim.engine import Schedule
from repro.sim.training import TrainingSimulator, simulate_partitioned


class TestSimulationSpec:
    def test_defaults_are_the_paper_platform(self):
        spec = SimulationSpec()
        assert spec.batch_size == 256
        assert spec.sim_engine == "analytic"
        simulator = spec.build_simulator()
        assert simulator.array.num_accelerators == 16
        assert simulator.topology.name == "h-tree"

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError, match="batch_size"):
            SimulationSpec(batch_size=0)

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown sim engine"):
            SimulationSpec(sim_engine="psychic")

    def test_build_simulator_carries_the_engine(self):
        spec = SimulationSpec(sim_engine="network")
        assert spec.build_simulator().sim_engine == "network"


class TestBackendRegistry:
    def test_known_engines(self):
        assert SIM_ENGINES == ("analytic", "network")
        assert validate_sim_engine(None) == "analytic"
        assert validate_sim_engine("network") == "network"
        with pytest.raises(ValueError, match="known engines"):
            validate_sim_engine("psychic")

    def test_backends_are_singletons_with_matching_names(self):
        for name in SIM_ENGINES:
            backend = get_backend(name)
            assert backend.name == name
            assert get_backend(name) is backend


class TestSimulateEntryPoint:
    def test_searches_when_no_assignment_given(self, lenet_model):
        spec = SimulationSpec(batch_size=64, array=ArrayConfig(num_accelerators=4))
        result = simulate(lenet_model, spec=spec)
        assert result.report.strategy_name == "HyPar"
        assert result.assignment is not None
        assert result.assignment.num_levels == 2
        assert result.sim_engine == "analytic"
        assert isinstance(result.schedule, Schedule)
        assert result.step_seconds == result.report.step_seconds

    def test_explicit_assignment_is_simulated_as_given(self, lenet_model):
        spec = SimulationSpec(batch_size=64, array=ArrayConfig(num_accelerators=4))
        assignment = data_parallelism(lenet_model, 2)
        result = simulate(lenet_model, assignment, spec)
        assert result.report.strategy_name == "custom"
        assert result.assignment is assignment

    def test_engine_override_is_keyword_only(self, lenet_model):
        spec = SimulationSpec(batch_size=64, array=ArrayConfig(num_accelerators=4))
        assignment = data_parallelism(lenet_model, 2)
        analytic = simulate(lenet_model, assignment, spec)
        network = simulate(lenet_model, assignment, spec, sim_engine="network")
        assert network.sim_engine == "network"
        assert network.report.step_seconds < analytic.report.step_seconds

    def test_spec_engine_applies_without_override(self, lenet_model):
        spec = SimulationSpec(
            batch_size=64,
            array=ArrayConfig(num_accelerators=4),
            sim_engine="network",
        )
        result = simulate(lenet_model, data_parallelism(lenet_model, 2), spec)
        assert result.sim_engine == "network"

    def test_simulator_method_engine_override(self, lenet_model):
        """`TrainingSimulator.simulate` takes the same keyword-only override."""
        simulator = TrainingSimulator(ArrayConfig(num_accelerators=4))
        assignment = data_parallelism(lenet_model, 2)
        default = simulator.simulate(lenet_model, assignment, 64)
        network = simulator.simulate(
            lenet_model, assignment, 64, sim_engine="network"
        )
        assert network.step_seconds < default.step_seconds
        with pytest.raises(ValueError, match="unknown sim engine"):
            simulator.simulate(lenet_model, assignment, 64, sim_engine="nope")


class TestDeprecatedShim:
    def test_simulate_partitioned_warns_and_matches_the_new_api(self, lenet_model):
        with pytest.warns(
            DeprecationWarning, match="simulate_partitioned is deprecated"
        ):
            report, assignment = simulate_partitioned(
                lenet_model, batch_size=64, array=ArrayConfig(num_accelerators=4)
            )
        result = simulate(
            lenet_model,
            spec=SimulationSpec(batch_size=64, array=ArrayConfig(num_accelerators=4)),
        )
        # Bit-exact delegation: same floats, same searched assignment.
        assert report.step_seconds == result.report.step_seconds
        assert report.energy_joules == result.report.energy_joules
        assert report.communication_bytes == result.report.communication_bytes
        assert assignment == result.assignment
