"""Directed tests for the contention-aware network engine.

The bit-tight agreement with the analytic engine on uncongested cases is
property-tested in ``tests/properties/test_property_network_sim.py``; here
the *differences* are pinned directly: routed bottleneck links, queueing of
exchanges that share a physical link, the gradient/backward overlap
relaxation, and the zero-byte communication marker regression.
"""

import pytest

from repro.accelerator.array import ArrayConfig
from repro.core.baselines import data_parallelism, model_parallelism
from repro.interconnect import HTreeTopology, TorusTopology
from repro.sim.network import flow_plans, link_name
from repro.sim.training import TrainingSimulator


def _platform(num_accelerators, topology_type=HTreeTopology):
    array = ArrayConfig(num_accelerators=num_accelerators)
    topology = topology_type(num_accelerators, array.link_bandwidth_bytes)
    return array, topology


def _simulator(num_accelerators, sim_engine, topology_type=HTreeTopology):
    array, topology = _platform(num_accelerators, topology_type)
    return TrainingSimulator(array, topology, sim_engine=sim_engine)


class TestFlowPlans:
    def test_level_and_pair_structure(self):
        _, topology = _platform(4)
        plans = flow_plans(topology)
        assert len(plans) == topology.num_levels == 2
        assert len(plans[0]) == 1  # H1: one boundary across the root
        assert len(plans[1]) == 2  # H2: one boundary per leaf pair
        assert plans[0][0].num_flows == 2
        assert all(plan.num_flows == 1 for plan in plans[1])

    def test_plans_are_cached_on_the_topology(self):
        _, topology = _platform(4)
        assert flow_plans(topology) is flow_plans(topology)

    def test_htree_bottleneck_equals_the_analytic_closed_form(self):
        """On the H tree every boundary's routed bottleneck reproduces
        ``bytes / effective_pair_bandwidth`` exactly -- the lemma behind the
        bit-tight uncongested agreement."""
        _, topology = _platform(16)
        plans = flow_plans(topology)
        for level in range(topology.num_levels):
            expected_bandwidth = topology.effective_pair_bandwidth(level)
            for plan in plans[level]:
                assert plan.duration(1.7e6) == 1.7e6 / expected_bandwidth

    def test_torus_routes_congest_shared_mesh_links(self):
        """On the 4x4 torus the top-level boundary funnels multiple flows
        over single physical links (count > 1): routed contention the
        analytic per-level aggregate cannot express."""
        _, torus = _platform(16, TorusTopology)
        plans = flow_plans(torus)
        top = plans[0][0]
        assert top.num_flows == 8
        assert max(count for _, _, count in top.link_loads) > 1

    def test_link_names_are_direction_free(self):
        assert link_name(3, "sw0") == link_name("sw0", 3)


class TestLinkQueueing:
    def test_exchanges_sharing_a_link_serialize(self, lenet_model):
        """Under dp every layer's gradient all-reduce crosses the same
        physical links; the independent all-reduces must queue, never
        overlap, on each link."""
        simulator = _simulator(4, "network")
        report = simulator.simulate(
            lenet_model, data_parallelism(lenet_model, 2), 64, "dp"
        )
        assert report.step_seconds > 0
        schedule = simulator.last_schedule
        by_boundary = {}
        for task in schedule.tasks:
            if task.tags.get("kind") != "communication" or task.duration == 0:
                continue
            key = (task.tags["level"], task.tags["pair"])
            by_boundary.setdefault(key, []).append(task)
        assert by_boundary, "expected busy communication boundaries"
        for tasks in by_boundary.values():
            tasks.sort(key=lambda task: task.start)
            for earlier, later in zip(tasks, tasks[1:]):
                assert later.start >= earlier.end

    def test_makespan_extends_with_the_queued_tail(self, lenet_model):
        """The last-drained all-reduce bounds the dp step from below."""
        simulator = _simulator(4, "network")
        report = simulator.simulate(
            lenet_model, data_parallelism(lenet_model, 2), 64, "dp"
        )
        schedule = simulator.last_schedule
        gradient_busy = sum(
            task.duration
            for task in schedule.tasks
            if task.name.startswith("gradient-intra/")
            and task.tags.get("pair") == 0
        )
        assert report.step_seconds >= gradient_busy


class TestOverlapRelaxation:
    def test_dp_network_step_is_strictly_faster_than_analytic(self, lenet_model):
        assignment = data_parallelism(lenet_model, 2)
        analytic = _simulator(4, "analytic").simulate(
            lenet_model, assignment, 64, "dp"
        )
        network = _simulator(4, "network").simulate(
            lenet_model, assignment, 64, "dp"
        )
        assert network.step_seconds < analytic.step_seconds

    def test_gradient_allreduce_overlaps_backward_compute(self, lenet_model):
        simulator = _simulator(4, "network")
        simulator.simulate(lenet_model, data_parallelism(lenet_model, 2), 64, "dp")
        schedule = simulator.last_schedule
        allreduces = [
            task
            for task in schedule.tasks
            if task.name.startswith("gradient-intra/") and task.duration > 0
        ]
        backwards = [
            task for task in schedule.tasks if task.name.startswith("backward/")
        ]
        assert any(
            allreduce.start < backward.end and backward.start < allreduce.end
            for allreduce in allreduces
            for backward in backwards
        ), "no gradient all-reduce overlapped any backward compute"

    def test_network_never_slower_on_the_htree(self, lenet_model, alexnet_model):
        """Every scheduling difference is a relaxation: on contention-free
        H-tree routes the network step is never above the analytic one."""
        for model in (lenet_model, alexnet_model):
            for assignment in (
                data_parallelism(model, 4),
                model_parallelism(model, 4),
            ):
                analytic = _simulator(16, "analytic").simulate(
                    model, assignment, 256
                )
                network = _simulator(16, "network").simulate(
                    model, assignment, 256
                )
                assert network.step_seconds <= analytic.step_seconds


class TestZeroByteMarkers:
    """Regression: the zero-byte path used to return the *compute* chain
    dependency as its gate, so tag consumers saw a compute task standing in
    for a communication marker."""

    @pytest.mark.parametrize("sim_engine", ["analytic", "network"])
    def test_markers_carry_communication_tags(self, lenet_model, sim_engine):
        simulator = _simulator(4, sim_engine)
        simulator.simulate(lenet_model, data_parallelism(lenet_model, 2), 64, "dp")
        schedule = simulator.last_schedule
        # dp has no forward exchange: every forward intra/inter task is a
        # zero-duration marker, tagged as communication, never compute.
        markers = [
            task
            for task in schedule.tasks
            if task.name.endswith("/none")
            and task.tags.get("phase") == "forward"
        ]
        assert markers
        for task in markers:
            assert task.tags["kind"] == "communication"
            assert task.duration == 0.0
        marker_names = {task.name for task in markers}
        assert "forward-intra/conv1/none" in marker_names

    @pytest.mark.parametrize("sim_engine", ["analytic", "network"])
    def test_tag_totals_separate_compute_from_communication(
        self, lenet_model, sim_engine
    ):
        simulator = _simulator(4, sim_engine)
        report = simulator.simulate(
            lenet_model, data_parallelism(lenet_model, 2), 64, "dp"
        )
        schedule = simulator.last_schedule
        forward_comm = sum(
            task.duration
            for task in schedule.by_tag("kind", "communication")
            if task.tags.get("phase") == "forward"
        )
        assert forward_comm == report.phase_seconds["forward"].communication_seconds
        assert forward_comm == 0.0
