"""Tests for communication-trace extraction."""

import pytest

from repro.core.baselines import data_parallelism, model_parallelism
from repro.core.hierarchical import HierarchicalPartitioner
from repro.interconnect import HTreeTopology, TorusTopology
from repro.sim.trace import CommunicationTrace, TraceBuilder, Transfer
from repro.nn.model_zoo import alexnet, lenet_c


@pytest.fixture(scope="module")
def builder():
    return TraceBuilder()


@pytest.fixture(scope="module")
def lenet_dp_trace(builder):
    model = lenet_c()
    return builder.build(model, data_parallelism(model, 4), 256)


@pytest.fixture(scope="module")
def alexnet_hypar_trace(builder):
    model = alexnet()
    assignment = HierarchicalPartitioner(num_levels=4).partition(model, 256).assignment
    return builder.build(model, assignment, 256)


class TestTransferRecord:
    def test_valid_transfer(self):
        transfer = Transfer(0, 1, 128.0, "conv1", "forward", 0, "intra")
        assert transfer.num_bytes == 128.0

    def test_invalid_transfers_rejected(self):
        with pytest.raises(ValueError):
            Transfer(0, 0, 1.0, "conv1", "forward", 0, "intra")
        with pytest.raises(ValueError):
            Transfer(0, 1, -1.0, "conv1", "forward", 0, "intra")
        with pytest.raises(ValueError):
            Transfer(0, 1, 1.0, "conv1", "sideways", 0, "intra")
        with pytest.raises(ValueError):
            Transfer(0, 1, 1.0, "conv1", "forward", 0, "broadcast")


class TestTraceTotals:
    def test_total_matches_partitioner_objective(self, builder):
        """The trace's byte total equals Algorithm 2's communication objective."""
        partitioner = HierarchicalPartitioner(num_levels=4)
        for model in (lenet_c(), alexnet()):
            for assignment in (
                data_parallelism(model, 4),
                model_parallelism(model, 4),
                partitioner.partition(model, 256).assignment,
            ):
                trace = builder.build(model, assignment, 256)
                expected = partitioner.evaluate(model, assignment, 256)
                assert trace.total_bytes == pytest.approx(
                    expected.total_communication_bytes, rel=1e-9
                )

    def test_per_level_totals_match(self, builder):
        model = alexnet()
        partitioner = HierarchicalPartitioner(num_levels=4)
        assignment = partitioner.partition(model, 256).assignment
        trace = builder.build(model, assignment, 256)
        expected = partitioner.evaluate(model, assignment, 256)
        by_level = trace.bytes_by_level()
        for level_result in expected.levels:
            assert by_level.get(level_result.level, 0.0) == pytest.approx(
                level_result.total_bytes, rel=1e-9
            )

    def test_phase_totals_sum_to_total(self, alexnet_hypar_trace):
        by_phase = alexnet_hypar_trace.bytes_by_phase()
        assert sum(by_phase.values()) == pytest.approx(alexnet_hypar_trace.total_bytes)

    def test_layer_totals_sum_to_total(self, alexnet_hypar_trace):
        by_layer = alexnet_hypar_trace.bytes_by_layer()
        assert sum(by_layer.values()) == pytest.approx(alexnet_hypar_trace.total_bytes)


class TestTraceStructure:
    def test_dp_traffic_is_gradient_phase_only(self, lenet_dp_trace):
        by_phase = lenet_dp_trace.bytes_by_phase()
        assert by_phase["gradient"] == pytest.approx(lenet_dp_trace.total_bytes)
        assert by_phase["forward"] == 0.0

    def test_mp_traffic_includes_forward_partial_sums(self, builder):
        model = lenet_c()
        trace = builder.build(model, model_parallelism(model, 4), 256)
        assert trace.bytes_by_phase()["forward"] > 0

    def test_transfers_are_symmetric(self, lenet_dp_trace):
        """Every exchange appears in both directions with equal volume."""
        by_pair_directed = {}
        for transfer in lenet_dp_trace.transfers:
            key = (transfer.source, transfer.destination)
            by_pair_directed[key] = by_pair_directed.get(key, 0.0) + transfer.num_bytes
        for (src, dst), volume in by_pair_directed.items():
            assert by_pair_directed[(dst, src)] == pytest.approx(volume)

    def test_partners_stay_within_their_pair_boundaries(self, lenet_dp_trace):
        """At the deepest level accelerators only talk to their sibling."""
        deepest = [t for t in lenet_dp_trace.transfers if t.level == 3]
        for transfer in deepest:
            assert transfer.source // 2 == transfer.destination // 2

    def test_filter(self, alexnet_hypar_trace):
        forward_only = alexnet_hypar_trace.filter(phase="forward")
        assert all(t.phase == "forward" for t in forward_only)
        level0_conv1 = alexnet_hypar_trace.filter(level=0, layer_name="conv1")
        assert all(t.level == 0 and t.layer_name == "conv1" for t in level0_conv1)

    def test_layer_count_mismatch_rejected(self, builder):
        with pytest.raises(ValueError):
            builder.build(lenet_c(), data_parallelism(alexnet(), 4), 256)


class TestLinkTraffic:
    def test_htree_link_loads_account_for_all_traffic(self, lenet_dp_trace):
        topology = HTreeTopology(16, 200e6)
        loads = lenet_dp_trace.link_traffic(topology)
        # Every transfer crosses at least one link, so the summed link load is
        # at least the injected traffic.
        assert sum(loads.values()) >= lenet_dp_trace.total_bytes

    def test_torus_spreads_traffic_over_more_link_bytes_than_htree_uses_hops(
        self, alexnet_hypar_trace
    ):
        htree = HTreeTopology(16, 200e6)
        torus = TorusTopology(16, 200e6)
        htree_loads = alexnet_hypar_trace.link_traffic(htree)
        torus_loads = alexnet_hypar_trace.link_traffic(torus)
        assert sum(htree_loads.values()) > 0
        assert sum(torus_loads.values()) > 0

    def test_accelerator_pair_totals(self, lenet_dp_trace):
        by_pair = lenet_dp_trace.bytes_by_accelerator_pair()
        assert sum(by_pair.values()) == pytest.approx(lenet_dp_trace.total_bytes)
        for (a, b), volume in by_pair.items():
            assert a < b
            assert volume > 0
