"""Tests for the training-step simulator."""

import pytest

from repro.accelerator.array import ArrayConfig
from repro.core.baselines import data_parallelism, model_parallelism
from repro.core.hierarchical import HierarchicalPartitioner
from repro.core.parallelism import DATA, HierarchicalAssignment
from repro.interconnect import HTreeTopology, TorusTopology
from repro.sim.training import PHASES, TrainingSimulator, simulate_partitioned


@pytest.fixture(scope="module")
def simulator():
    return TrainingSimulator(ArrayConfig())


@pytest.fixture(scope="module")
def small_simulator():
    return TrainingSimulator(ArrayConfig(num_accelerators=4))


class TestReportStructure:
    def test_report_identification(self, simulator, lenet_model):
        assignment = data_parallelism(lenet_model, 4)
        report = simulator.simulate(lenet_model, assignment, 256, "Data Parallelism")
        assert report.model_name == "Lenet-c"
        assert report.strategy_name == "Data Parallelism"
        assert report.topology_name == "h-tree"
        assert report.num_accelerators == 16
        assert report.batch_size == 256

    def test_positive_time_and_energy(self, simulator, lenet_model):
        report = simulator.simulate(lenet_model, data_parallelism(lenet_model, 4), 256)
        assert report.step_seconds > 0
        assert report.energy_joules > 0

    def test_phase_breakdown_covers_three_phases(self, simulator, lenet_model):
        report = simulator.simulate(lenet_model, data_parallelism(lenet_model, 4), 256)
        assert set(report.phase_seconds) == set(PHASES)
        for phase in PHASES:
            assert report.phase_seconds[phase].compute_seconds > 0

    def test_level_communication_has_one_entry_per_level(self, simulator, lenet_model):
        report = simulator.simulate(lenet_model, data_parallelism(lenet_model, 4), 256)
        assert len(report.level_communication_bytes) == 4
        assert report.communication_bytes == pytest.approx(
            sum(report.level_communication_bytes)
        )

    def test_makespan_at_least_sum_of_compute(self, simulator, lenet_model):
        report = simulator.simulate(lenet_model, data_parallelism(lenet_model, 4), 256)
        assert report.step_seconds >= report.compute_seconds


class TestCommunicationAccounting:
    def test_simulated_traffic_matches_partitioner_cost(self, simulator, alexnet_model):
        """The simulator's byte counter must agree with Algorithm 2's objective."""
        partitioner = HierarchicalPartitioner(num_levels=4)
        for assignment in (
            data_parallelism(alexnet_model, 4),
            model_parallelism(alexnet_model, 4),
            partitioner.partition(alexnet_model, 256).assignment,
        ):
            report = simulator.simulate(alexnet_model, assignment, 256)
            expected = partitioner.evaluate(
                alexnet_model, assignment, 256
            ).total_communication_bytes
            assert report.communication_bytes == pytest.approx(expected, rel=1e-9)

    def test_data_parallelism_has_no_forward_communication(self, simulator, sconv_model):
        report = simulator.simulate(sconv_model, data_parallelism(sconv_model, 4), 256)
        assert report.phase_seconds["forward"].communication_seconds == pytest.approx(0.0)
        assert report.phase_seconds["gradient"].communication_seconds > 0

    def test_model_parallelism_has_forward_communication(self, simulator, sconv_model):
        report = simulator.simulate(sconv_model, model_parallelism(sconv_model, 4), 256)
        assert report.phase_seconds["forward"].communication_seconds > 0

    def test_energy_communication_component_tracks_traffic(self, simulator, vgg_a_model):
        dp = simulator.simulate(vgg_a_model, data_parallelism(vgg_a_model, 4), 256)
        hypar_assignment = HierarchicalPartitioner(num_levels=4).partition(
            vgg_a_model, 256
        ).assignment
        hypar = simulator.simulate(vgg_a_model, hypar_assignment, 256)
        assert hypar.communication_bytes < dp.communication_bytes
        assert hypar.energy.communication_joules < dp.energy.communication_joules

    def test_parallelism_independent_energy_is_strategy_invariant(
        self, simulator, alexnet_model
    ):
        dp = simulator.simulate(alexnet_model, data_parallelism(alexnet_model, 4), 256)
        mp = simulator.simulate(alexnet_model, model_parallelism(alexnet_model, 4), 256)
        assert dp.energy.parallelism_independent_joules == pytest.approx(
            mp.energy.parallelism_independent_joules, rel=1e-9
        )


class TestStrategyOrdering:
    def test_hypar_is_fastest_on_alexnet(self, simulator, alexnet_model):
        partitioner = HierarchicalPartitioner(num_levels=4)
        hypar = partitioner.partition(alexnet_model, 256).assignment
        reports = {
            "dp": simulator.simulate(alexnet_model, data_parallelism(alexnet_model, 4), 256),
            "mp": simulator.simulate(alexnet_model, model_parallelism(alexnet_model, 4), 256),
            "hypar": simulator.simulate(alexnet_model, hypar, 256),
        }
        assert reports["hypar"].step_seconds <= reports["dp"].step_seconds
        assert reports["hypar"].step_seconds <= reports["mp"].step_seconds

    def test_model_parallelism_is_worst_on_conv_networks(self, simulator, sconv_model):
        dp = simulator.simulate(sconv_model, data_parallelism(sconv_model, 4), 256)
        mp = simulator.simulate(sconv_model, model_parallelism(sconv_model, 4), 256)
        assert mp.step_seconds > dp.step_seconds

    def test_data_parallelism_is_worst_on_fc_networks(self, simulator, sfc_model):
        dp = simulator.simulate(sfc_model, data_parallelism(sfc_model, 4), 256)
        mp = simulator.simulate(sfc_model, model_parallelism(sfc_model, 4), 256)
        assert dp.step_seconds > mp.step_seconds


class TestArraySizes:
    def test_single_accelerator_has_no_communication(self, lenet_model):
        simulator = TrainingSimulator(ArrayConfig(num_accelerators=1))
        report = simulator.simulate(lenet_model, None, 256)
        assert report.communication_bytes == 0.0
        assert report.energy.communication_joules == 0.0
        assert report.topology_name == "none"

    def test_single_accelerator_rejects_assignment(self, lenet_model):
        simulator = TrainingSimulator(ArrayConfig(num_accelerators=1))
        with pytest.raises(ValueError):
            simulator.simulate(lenet_model, data_parallelism(lenet_model, 1), 256)

    def test_multi_accelerator_requires_assignment(self, simulator, lenet_model):
        with pytest.raises(ValueError):
            simulator.simulate(lenet_model, None, 256)

    def test_level_count_mismatch_rejected(self, small_simulator, lenet_model):
        with pytest.raises(ValueError):
            small_simulator.simulate(lenet_model, data_parallelism(lenet_model, 4), 256)

    def test_layer_count_mismatch_rejected(self, simulator, lenet_model, alexnet_model):
        with pytest.raises(ValueError):
            simulator.simulate(lenet_model, data_parallelism(alexnet_model, 4), 256)

    def test_more_accelerators_speed_up_hypar(self, vgg_a_model):
        """On a compute-heavy network HyPar keeps getting faster as the array grows."""
        times = []
        for size in (2, 4, 16):
            array = ArrayConfig(num_accelerators=size)
            simulator = TrainingSimulator(array)
            partitioner = HierarchicalPartitioner(num_levels=array.num_levels)
            assignment = partitioner.partition(vgg_a_model, 256).assignment
            times.append(simulator.simulate(vgg_a_model, assignment, 256).step_seconds)
        assert times[0] > times[1] > times[2]


class TestTopologies:
    def test_torus_is_not_faster_than_htree_for_hypar(self, alexnet_model):
        array = ArrayConfig()
        assignment = HierarchicalPartitioner(num_levels=4).partition(
            alexnet_model, 256
        ).assignment
        htree = TrainingSimulator(
            array, HTreeTopology(16, array.link_bandwidth_bytes)
        ).simulate(alexnet_model, assignment, 256)
        torus = TrainingSimulator(
            array, TorusTopology(16, array.link_bandwidth_bytes)
        ).simulate(alexnet_model, assignment, 256)
        assert torus.step_seconds >= htree.step_seconds

    def test_topology_array_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TrainingSimulator(ArrayConfig(num_accelerators=16), HTreeTopology(8, 200e6))

    def test_single_accelerator_with_topology_rejected(self):
        with pytest.raises(ValueError):
            TrainingSimulator(ArrayConfig(num_accelerators=1), HTreeTopology(2, 200e6))


class TestSimulatePartitioned:
    def test_returns_report_and_assignment(self, lenet_model):
        with pytest.warns(DeprecationWarning, match="simulate_partitioned is deprecated"):
            report, assignment = simulate_partitioned(lenet_model, batch_size=256)
        assert report.strategy_name == "HyPar"
        assert assignment.num_levels == 4
        assert report.communication_bytes > 0

    def test_custom_array_size(self, lenet_model):
        with pytest.warns(DeprecationWarning, match="simulate_partitioned is deprecated"):
            report, assignment = simulate_partitioned(
                lenet_model, batch_size=64, array=ArrayConfig(num_accelerators=4)
            )
        assert report.num_accelerators == 4
        assert assignment.num_levels == 2
