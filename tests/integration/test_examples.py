"""Integration tests that run every example script end to end.

The examples are part of the public deliverable, so the suite executes each
one (with small arguments where the script accepts them) and checks it
completes successfully and prints the key results it promises.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def _load_example(name: str):
    """Import an example script as a module without executing ``main``."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExampleScripts:
    def test_examples_directory_contents(self):
        scripts = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))
        assert scripts == [
            "partition_imagenet_models.py",
            "quickstart.py",
            "scalability_study.py",
            "topology_and_trick.py",
            "validate_communication_model.py",
        ]

    def test_quickstart(self, capsys, monkeypatch):
        module = _load_example("quickstart.py")
        monkeypatch.setattr(sys, "argv", ["quickstart.py", "Lenet-c"])
        assert module.main() == 0
        out = capsys.readouterr().out
        assert "HyPar's optimized parallelism" in out
        assert "Data Parallelism" in out
        assert "speedup" in out

    def test_quickstart_default_model_is_alexnet(self, capsys, monkeypatch):
        module = _load_example("quickstart.py")
        monkeypatch.setattr(sys, "argv", ["quickstart.py"])
        assert module.main() == 0
        assert "AlexNet" in capsys.readouterr().out

    def test_scalability_study(self, capsys, monkeypatch):
        module = _load_example("scalability_study.py")
        monkeypatch.setattr(sys, "argv", ["scalability_study.py", "AlexNet"])
        # Keep the example fast inside the test suite: sweep fewer sizes.
        monkeypatch.setattr(module, "ARRAY_SIZES", (1, 4, 16))
        assert module.main() == 0
        out = capsys.readouterr().out
        assert "Scalability of AlexNet" in out
        assert "Phase breakdown" in out

    def test_validate_communication_model(self, capsys):
        module = _load_example("validate_communication_model.py")
        assert module.main() == 0
        out = capsys.readouterr().out
        assert "every assignment matched the monolithic step" in out
        assert "cheapest assignment" in out

    @pytest.mark.slow
    def test_partition_imagenet_models(self, capsys):
        module = _load_example("partition_imagenet_models.py")
        assert module.main() == 0
        out = capsys.readouterr().out
        assert "Optimized hybrid parallelism" in out
        assert "geometric-mean speedup" in out

    @pytest.mark.slow
    def test_topology_and_trick(self, capsys):
        module = _load_example("topology_and_trick.py")
        assert module.main() == 0
        out = capsys.readouterr().out
        assert "H tree versus torus" in out
        assert "one weird trick" in out
