"""Qualitative reproduction of the paper's evaluation claims.

Each test states one claim from the paper's Section 6 and verifies that the
reproduction exhibits the same *shape* (who wins, in which direction, with
a materially similar magnitude).  Exact values are not asserted because the
authors' simulator is not public; EXPERIMENTS.md records the measured
numbers next to the paper's.
"""

import pytest

from repro.accelerator.array import ArrayConfig
from repro.analysis.experiments import (
    DATA_PARALLELISM,
    HYPAR,
    MODEL_PARALLELISM,
    ExperimentRunner,
)
from repro.analysis.scalability import run_scalability_study
from repro.analysis.topology_study import run_topology_study
from repro.analysis.trick_study import run_trick_study
from repro.core.parallelism import DATA, MODEL
from repro.nn.model_zoo import get_model


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


@pytest.fixture(scope="module")
def evaluation(runner):
    """The Figures 6-8 evaluation over all ten networks (shared by many tests)."""
    return runner.run()


class TestFigure5Claims:
    def test_conv_layers_usually_dp_and_fc_layers_usually_mp(self, runner):
        """'For most networks ... in the convolutional layers, the parallelisms
        are usually data parallelism, and in fully-connected layers, the
        parallelisms usually are model parallelism.'"""
        conv_dp = conv_total = fc_mp = fc_total = 0
        for name in ("AlexNet", "VGG-A", "VGG-B", "VGG-C", "VGG-D", "VGG-E"):
            model = get_model(name)
            result = runner.optimized_parallelism(model)
            for level in result.assignment:
                for layer, choice in zip(model, level):
                    if layer.is_conv:
                        conv_total += 1
                        conv_dp += choice is DATA
                    else:
                        fc_total += 1
                        fc_mp += choice is MODEL
        assert conv_dp / conv_total > 0.9
        assert fc_mp / fc_total > 0.7

    def test_sconv_is_all_data_parallelism(self, runner):
        result = runner.optimized_parallelism(get_model("SCONV"))
        assert result.assignment.is_uniform(DATA)

    def test_hybrid_parallelism_appears_in_most_networks(self, runner):
        """'Except SCONV, the optimized parallelisms ... consist of both data
        parallelism and model parallelism, leading to hybrid parallelism.'"""
        hybrid = 0
        for name in ("SFC", "Lenet-c", "AlexNet", "VGG-A", "VGG-E"):
            result = runner.optimized_parallelism(get_model(name))
            has_dp = any(level.count(DATA) for level in result.assignment)
            has_mp = any(level.count(MODEL) for level in result.assignment)
            hybrid += has_dp and has_mp
        assert hybrid >= 3


class TestFigure6Claims:
    def test_hypar_gmean_gain_is_material(self, evaluation):
        """Paper: 3.39x gmean over Data Parallelism.  We require > 2x."""
        gmean = evaluation.gmean(evaluation.performance(), HYPAR)
        assert gmean > 2.0

    def test_model_parallelism_is_almost_always_worse_than_dp(self, evaluation):
        perf = evaluation.performance()
        worse = sum(
            1 for row in perf.values() if row[MODEL_PARALLELISM] < row[DATA_PARALLELISM]
        )
        assert worse >= 8  # every network except SFC (and possibly one more)

    def test_sfc_prefers_model_parallelism_but_hypar_at_least_matches(self, evaluation):
        row = evaluation.performance()["SFC"]
        assert row[MODEL_PARALLELISM] > row[DATA_PARALLELISM]
        assert row[HYPAR] >= row[MODEL_PARALLELISM] * 0.999

    def test_sconv_hypar_equals_data_parallelism(self, evaluation):
        row = evaluation.performance()["SCONV"]
        assert row[HYPAR] == pytest.approx(1.0, rel=1e-6)

    def test_hypar_never_below_data_parallelism(self, evaluation):
        for row in evaluation.performance().values():
            assert row[HYPAR] >= 1.0 - 1e-9


class TestFigure7Claims:
    def test_hypar_energy_gmean_between_one_and_performance_gmean(self, evaluation):
        """Energy gains (paper: 1.51x) are real but smaller than performance
        gains (paper: 3.39x) because only the communication share shrinks."""
        perf = evaluation.gmean(evaluation.performance(), HYPAR)
        energy = evaluation.gmean(evaluation.energy_efficiency(), HYPAR)
        assert 1.0 < energy < perf

    def test_model_parallelism_less_energy_efficient_than_dp_on_conv_nets(self, evaluation):
        energy = evaluation.energy_efficiency()
        for name in ("SCONV", "AlexNet", "VGG-A", "VGG-E"):
            assert energy[name][MODEL_PARALLELISM] < 1.0


class TestFigure8Claims:
    def test_communication_ordering_mp_dp_hypar(self, evaluation):
        """Gmean communication: MP (8.88 GB) > DP (1.83 GB) > HyPar (0.318 GB)."""
        comm = evaluation.communication()
        gmean_mp = evaluation.gmean(comm, MODEL_PARALLELISM)
        gmean_dp = evaluation.gmean(comm, DATA_PARALLELISM)
        gmean_hypar = evaluation.gmean(comm, HYPAR)
        assert gmean_mp > gmean_dp > gmean_hypar

    def test_gmean_magnitudes_close_to_paper(self, evaluation):
        """The absolute gmeans should land within ~2x of the paper's values."""
        comm = evaluation.communication()
        assert 4.0 < evaluation.gmean(comm, MODEL_PARALLELISM) < 20.0
        assert 0.9 < evaluation.gmean(comm, DATA_PARALLELISM) < 4.0
        assert 0.15 < evaluation.gmean(comm, HYPAR) < 0.7

    def test_vgg_dp_communication_close_to_paper(self, evaluation):
        """Paper: ~15.9-17.2 GB/step for the VGG family under Data Parallelism."""
        comm = evaluation.communication()
        for name in ("VGG-A", "VGG-B", "VGG-C", "VGG-D", "VGG-E"):
            assert 13.0 < comm[name][DATA_PARALLELISM] < 20.0

    def test_hypar_reduces_vgg_communication_by_an_order_of_magnitude(self, evaluation):
        comm = evaluation.communication()
        for name in ("VGG-A", "VGG-B", "VGG-C"):
            assert comm[name][DATA_PARALLELISM] / comm[name][HYPAR] > 5.0


class TestFigure11Claims:
    @pytest.fixture(scope="class")
    def study(self):
        return run_scalability_study(array_sizes=(1, 4, 8, 16, 32, 64))

    def test_hypar_always_outperforms_dp(self, study):
        for row in study.as_rows():
            assert row["hypar_gain"] >= row["dp_gain"] - 1e-9

    def test_hypar_always_has_lower_communication(self, study):
        for row in study.as_rows():
            assert row["hypar_comm_gb"] <= row["dp_comm_gb"] + 1e-12

    def test_dp_gain_saturates_while_hypar_keeps_growing(self, study):
        rows = {row["num_accelerators"]: row for row in study.as_rows()}
        # From 16 to 64 accelerators DP improves by far less than 2x ...
        assert rows[64]["dp_gain"] / rows[16]["dp_gain"] < 1.6
        # ... while HyPar still improves substantially.
        assert rows[64]["hypar_gain"] / rows[16]["hypar_gain"] > 1.6


class TestFigure12Claims:
    @pytest.fixture(scope="class")
    def study(self):
        models = [get_model(n) for n in ("SCONV", "Lenet-c", "AlexNet", "VGG-A", "VGG-E")]
        return run_topology_study(models=models)

    def test_htree_outperforms_torus_overall(self, study):
        assert study.gmean_htree() > study.gmean_torus()

    def test_hypar_still_profitable_on_torus(self, study):
        """The partition also works for the torus even though HyPar prefers the
        H tree (Section 6.5.1)."""
        by_name = {c.model_name: c for c in study.comparisons}
        assert by_name["AlexNet"].torus_performance > 1.0


class TestFigure13Claims:
    @pytest.fixture(scope="class")
    def study(self):
        return run_trick_study()

    def test_hypar_beats_the_trick_on_average(self, study):
        assert study.gmean_performance() > 1.05
        assert study.gmean_energy() >= 1.0

    def test_best_case_advantage_is_substantially_larger_than_average(self, study):
        assert study.max_performance() > study.gmean_performance() * 1.2
