"""End-to-end integration tests: model zoo -> partition -> simulate -> report."""

import pytest

from repro import (
    ArrayConfig,
    ExperimentRunner,
    HierarchicalPartitioner,
    SimulationSpec,
    TrainingSimulator,
    build_topology,
    get_model,
    simulate,
)
from repro.core.baselines import data_parallelism, one_weird_trick


class TestPublicApiWorkflow:
    """The workflow documented in the README, exercised through `repro`'s
    top-level exports only."""

    def test_quickstart_flow(self):
        model = get_model("AlexNet")
        partitioner = HierarchicalPartitioner(num_levels=4)
        result = partitioner.partition(model, batch_size=256)
        assert result.num_accelerators == 16

        simulator = TrainingSimulator(ArrayConfig())
        report = simulator.simulate(model, result.assignment, 256, "HyPar")
        baseline = simulator.simulate(model, data_parallelism(model, 4), 256, "DP")
        assert report.speedup_over(baseline) > 1.0

    def test_simulate_searches_when_no_assignment_given(self):
        result = simulate(get_model("Lenet-c"), spec=SimulationSpec(batch_size=128))
        assert result.report.strategy_name == "HyPar"
        assert result.assignment.num_layers == 4
        assert result.sim_engine == "analytic"

    def test_topology_factory_integrates_with_simulator(self):
        model = get_model("Cifar-c")
        array = ArrayConfig()
        topology = build_topology("torus", array.num_accelerators, array.link_bandwidth_bytes)
        simulator = TrainingSimulator(array, topology)
        assignment = HierarchicalPartitioner(num_levels=4).partition(model, 256).assignment
        report = simulator.simulate(model, assignment, 256, "HyPar")
        assert report.topology_name == "torus"
        assert report.step_seconds > 0

    def test_experiment_runner_single_model(self):
        runner = ExperimentRunner(array=ArrayConfig(num_accelerators=4), batch_size=64)
        comparison = runner.compare(get_model("Lenet-c"))
        perf = comparison.normalized_performance()
        assert perf["Data Parallelism"] == pytest.approx(1.0)
        assert perf["HyPar"] >= 1.0


class TestCrossModuleConsistency:
    @pytest.mark.parametrize("model_name", ["SFC", "SCONV", "Lenet-c", "AlexNet", "VGG-A"])
    def test_partitioner_and_simulator_agree_on_traffic(self, model_name):
        """The objective Algorithm 2 minimises is exactly what the simulator
        observes on the wire, for every evaluation network."""
        model = get_model(model_name)
        partitioner = HierarchicalPartitioner(num_levels=4)
        result = partitioner.partition(model, 256)
        simulator = TrainingSimulator(ArrayConfig())
        report = simulator.simulate(model, result.assignment, 256, "HyPar")
        assert report.communication_bytes == pytest.approx(
            result.total_communication_bytes, rel=1e-9
        )

    @pytest.mark.parametrize("batch_size", [32, 256, 1024])
    def test_hypar_never_slower_than_trick_or_defaults(self, batch_size):
        """Across batch sizes, the searched assignment beats every baseline the
        paper compares against on AlexNet."""
        model = get_model("AlexNet")
        partitioner = HierarchicalPartitioner(num_levels=4)
        simulator = TrainingSimulator(ArrayConfig())
        hypar = simulator.simulate(
            model, partitioner.partition(model, batch_size).assignment, batch_size, "HyPar"
        )
        for name, assignment in (
            ("dp", data_parallelism(model, 4)),
            ("trick", one_weird_trick(model, 4)),
        ):
            baseline = simulator.simulate(model, assignment, batch_size, name)
            assert hypar.step_seconds <= baseline.step_seconds * 1.001

    def test_all_ten_networks_partition_and_simulate(self):
        """Every network in the zoo goes through the full pipeline without error."""
        from repro.nn.model_zoo import all_models

        partitioner = HierarchicalPartitioner(num_levels=4)
        simulator = TrainingSimulator(ArrayConfig())
        for model in all_models():
            result = partitioner.partition(model, 256)
            report = simulator.simulate(model, result.assignment, 256, "HyPar")
            assert report.step_seconds > 0
            assert report.energy_joules > 0


class TestMemoryFeasibility:
    def test_model_working_sets_fit_in_hmc_capacity(self):
        """Sanity check of the substrate: per-accelerator working sets of the
        largest network stay far below the 8 GB HMC capacity at batch 256."""
        from repro.accelerator.hmc import HMCConfig

        model = get_model("VGG-E")
        hmc = HMCConfig()
        batch = 256
        # Full (unpartitioned) working set: weights + activations + errors.
        activations = sum(layer.output_shape.elements for layer in model) * batch
        working_set_bytes = (model.total_weights * 2 + activations * 2) * 4
        per_accelerator = working_set_bytes / 16
        assert hmc.fits(per_accelerator)
