"""End-to-end coverage of the branching-network (DAG) zoo.

Two suites:

* ``TestChainDagByteIdentity`` -- the regression demanded by the DAG IR
  refactor: on every *chain* model of the paper's zoo the edge-indexed
  tables, the array DP and the hierarchical search must produce
  byte-identical results to the object-based oracle (which performs the
  pre-refactor arithmetic), so lifting the IR to a DAG cannot have moved a
  single float on existing models.

* ``TestGraphModelsEndToEnd`` -- the acceptance path for ``ResNet-S`` and
  ``Inception-S``: hierarchical search, tensor placement, numerically
  validated partitioned execution and event-driven simulation, under both
  the paper's dp/mp axis and the widened dp,mp,pp space.
"""

import numpy as np
import pytest

from repro.core.costs import CostTable
from repro.core.execution import TwoGroupExecutor
from repro.core.hierarchical import HierarchicalPartitioner
from repro.core.partitioner import TwoWayPartitioner
from repro.core.placement import TensorPlacement
from repro.core.tensors import model_tensors
from repro.nn.model_zoo import all_graph_models, all_models, inception_s, resnet_s
from repro.nn.reference import ReferenceNetwork
from repro.sim.api import SimulationSpec, simulate
from repro.sim.training import TrainingSimulator

STRATEGY_SPACES = ["dp,mp", "dp,mp,pp"]


class TestChainDagByteIdentity:
    def test_zoo_chains_compile_to_chain_edge_lists(self):
        for model in all_models():
            assert model.is_chain
            table = CostTable.compile(model, 64)
            assert table.is_chain
            assert table.edges == tuple(
                (index, index + 1) for index in range(len(model) - 1)
            )

    def test_zoo_chain_search_is_byte_identical_to_oracle(self):
        partitioner = TwoWayPartitioner()
        for model in all_models():
            tensors = model_tensors(model, 256)
            vectorized = partitioner.partition_tensors(tensors, edges=model.edges)
            reference = partitioner.partition_tensors_reference(tensors)
            assert vectorized.communication_bytes == reference.communication_bytes
            assert vectorized.assignment.choices == reference.assignment.choices

    def test_zoo_chain_hierarchical_search_matches_reference_evaluation(self):
        partitioner = HierarchicalPartitioner(num_levels=4)
        for model in all_models():
            searched = partitioner.partition(model, 256)
            reference = partitioner.evaluate_reference(
                model, searched.assignment, 256
            )
            assert (
                searched.total_communication_bytes
                == reference.total_communication_bytes
            )
            for fast, slow in zip(searched.levels, reference.levels):
                assert fast.communication_bytes == slow.communication_bytes

    def test_graph_models_are_not_chains(self):
        for model in all_graph_models():
            assert not model.is_chain
            assert model.num_edges > len(model) - 1


@pytest.mark.parametrize("strategies", STRATEGY_SPACES)
@pytest.mark.parametrize("builder", [resnet_s, inception_s])
class TestGraphModelsEndToEnd:
    def test_search_placement_execution_simulation(self, builder, strategies):
        model = builder()
        batch_size = 16

        # --- search -------------------------------------------------------
        partitioner = HierarchicalPartitioner(num_levels=2, strategies=strategies)
        table = partitioner.compile_table(model, batch_size)
        searched = partitioner.partition(model, batch_size, table=table)
        reference = partitioner.evaluate_reference(
            model, searched.assignment, batch_size
        )
        assert (
            searched.total_communication_bytes
            == reference.total_communication_bytes
        )

        # The per-level winners are true optima of the edge-indexed tables.
        level0 = partitioner._level_tables(model, batch_size, table).level_table(0)
        _, brute_total = level0.argmin_assignment()
        assert searched.levels[0].communication_bytes == brute_total

        # --- placement ----------------------------------------------------
        placement = TensorPlacement(model, searched.assignment)
        placement.validate()
        assert placement.max_memory_footprint_bytes(batch_size) > 0

        # --- partitioned execution (numerically validated) ----------------
        network = ReferenceNetwork(model, seed=0)
        x = network.random_batch(4)
        states = network.forward(x)
        grad_output = np.random.default_rng(1).standard_normal(
            states[-1].output.shape
        )
        network.backward(states, grad_output)
        executor = TwoGroupExecutor(
            ReferenceNetwork(model, seed=0), searched.assignment[0]
        )
        result = executor.run_step(x, grad_output)
        np.testing.assert_allclose(result.output, states[-1].output, atol=1e-9)
        np.testing.assert_allclose(
            result.input_error, states[0].grad_input, atol=1e-9
        )
        for gradient, state in zip(result.gradients, states):
            np.testing.assert_allclose(gradient, state.grad_weight, atol=1e-9)

        # --- simulation ---------------------------------------------------
        result = simulate(
            model, spec=SimulationSpec(batch_size=batch_size, strategies=strategies)
        )
        report, assignment = result.report, result.assignment
        assert report.step_seconds > 0
        assert report.communication_bytes >= 0
        evaluated = HierarchicalPartitioner(
            num_levels=4, strategies=strategies
        ).evaluate(model, assignment, batch_size)
        assert report.communication_bytes == pytest.approx(
            evaluated.total_communication_bytes
        )


class TestDagExecutorMatchesCommunicationModel:
    """Per-edge Table-2 amounts are what a real partitioned run must move.

    Exact for every dp/mp assignment on chains and DAGs.  For assignments
    containing ``pp`` on a branching model the analytic amounts are an
    *upper bound*: stage ownership alternates along the layer order, so a
    skip edge may connect two same-owner pipeline stages whose handoff the
    executor performs for free (see DESIGN.md).
    """

    @staticmethod
    def _analytic_event_elements(model, assignment, batch_size):
        from repro.core.communication import CommunicationModel

        comm = CommunicationModel()
        tensors = model_tensors(model, batch_size)
        expected_elements = 0.0
        for layer in model:
            choice = assignment[layer.index]
            expected_elements += 2.0 * comm.intra_layer_elements(
                tensors[layer.index], choice
            )
            for source in layer.inputs:
                expected_elements += 2.0 * comm.inter_layer_elements(
                    assignment[source], choice, tensors[source]
                )
        return expected_elements

    @staticmethod
    def _executed_event_elements(model, assignment, batch_size, seed=2):
        executor = TwoGroupExecutor(ReferenceNetwork(model, seed=0), assignment)
        x = executor.network.random_batch(batch_size)
        states = executor.network.forward(x)
        grad_output = np.random.default_rng(seed).standard_normal(
            states[-1].output.shape
        )
        result = executor.run_step(x, grad_output)
        # The partitioned run stays numerically exact under every
        # assignment, whatever the event accounting says.
        np.testing.assert_allclose(result.output, states[-1].output, atol=1e-9)
        return result.total_elements()

    @pytest.mark.parametrize("builder", [resnet_s, inception_s])
    def test_event_totals_match_cost_model_on_searched_assignment(self, builder):
        model = builder()
        batch_size = 4
        searched = TwoWayPartitioner().partition(model, batch_size)
        assert self._executed_event_elements(
            model, searched.assignment, batch_size
        ) == pytest.approx(
            self._analytic_event_elements(model, searched.assignment, batch_size)
        )

    @pytest.mark.parametrize("builder", [resnet_s, inception_s])
    def test_event_totals_match_cost_model_on_random_dp_mp_assignments(
        self, builder
    ):
        from repro.core.parallelism import LayerAssignment, Parallelism

        model = builder()
        batch_size = 4
        rng = np.random.default_rng(11)
        for _ in range(6):
            assignment = LayerAssignment(
                tuple(
                    Parallelism.DATA if bit == 0 else Parallelism.MODEL
                    for bit in rng.integers(0, 2, size=len(model))
                )
            )
            assert self._executed_event_elements(
                model, assignment, batch_size
            ) == pytest.approx(
                self._analytic_event_elements(model, assignment, batch_size)
            )

    def test_pipeline_on_dag_is_charged_as_an_upper_bound(self):
        """A same-owner pp skip edge moves nothing but is still charged.

        ResNet-S with stem and down1 both pipelined (pp ordinals 0 and 2 →
        same owner group): the skip edge stem→down1 carries no bytes in
        the executor, so the analytic total strictly exceeds the executed
        one — the documented upper-bound contract for pp on DAGs.
        """
        from repro.core.parallelism import LayerAssignment

        model = resnet_s()
        batch_size = 4
        assignment = LayerAssignment.of(
            ["pp", "mp", "pp", "pp", "mp", "pp", "pp", "dp", "dp", "dp"]
        )
        analytic = self._analytic_event_elements(model, assignment, batch_size)
        executed = self._executed_event_elements(model, assignment, batch_size)
        assert executed < analytic
        # The gap is exactly the free same-owner pp→pp skip handoffs
        # (stem→down1 and down1→down2 here): one full activation plus one
        # full error per skip, both directions.
        free_skip_elements = 2.0 * (
            batch_size * model[0].output_shape.elements
            + batch_size * model[3].output_shape.elements
        )
        assert analytic == pytest.approx(executed + free_skip_elements)

    def test_simulator_task_graph_respects_branch_joins(self):
        model = resnet_s()
        simulator = TrainingSimulator()
        partitioner = HierarchicalPartitioner(num_levels=4)
        searched = partitioner.partition(model, 16)
        report = simulator.simulate(model, searched.assignment, 16)
        # The simulated step covers at least the serial compute of every
        # layer pass (forward + backward + gradient chain through the DAG).
        assert report.step_seconds > 0
        phases = report.phase_seconds
        assert phases["forward"].compute_seconds > 0
        assert phases["backward"].compute_seconds > 0
        assert phases["gradient"].compute_seconds > 0
