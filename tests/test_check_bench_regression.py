"""The bench-regression guardrail script's failure-mode handling.

The comparison logic itself is exercised by CI on real benchmark output;
these tests pin the explicit handling of broken inputs -- above all a
missing or empty *current* results file, which happens whenever the
benchmark run dies before ``--benchmark-json`` writes anything.
"""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "scripts",
    "check_bench_regression.py",
)


def _load_script():
    spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def script():
    return _load_script()


def _bench(fullname: str, mean: float, **extra_info) -> dict:
    return {"fullname": fullname, "stats": {"mean": mean}, "extra_info": extra_info}


def _write(path, benchmarks) -> str:
    path.write_text(json.dumps({"benchmarks": benchmarks}))
    return str(path)


class TestBrokenInputs:
    def test_missing_current_file_exits_with_a_clear_message(self, script, tmp_path):
        baseline = _write(tmp_path / "baseline.json", [_bench("a", 1.0)])
        with pytest.raises(SystemExit, match="cannot read the current results file"):
            script.main([baseline, str(tmp_path / "does_not_exist.json")])

    def test_empty_current_file_exits_with_a_clear_message(self, script, tmp_path):
        baseline = _write(tmp_path / "baseline.json", [_bench("a", 1.0)])
        current = tmp_path / "current.json"
        current.write_text("")
        with pytest.raises(SystemExit, match="is empty"):
            script.main([baseline, str(current)])

    def test_truncated_json_exits_with_a_clear_message(self, script, tmp_path):
        baseline = _write(tmp_path / "baseline.json", [_bench("a", 1.0)])
        current = tmp_path / "current.json"
        current.write_text('{"benchmarks": [')
        with pytest.raises(SystemExit, match="not valid JSON"):
            script.main([baseline, str(current)])

    def test_payload_without_benchmarks_key_is_rejected(self, script, tmp_path):
        baseline = _write(tmp_path / "baseline.json", [_bench("a", 1.0)])
        current = tmp_path / "current.json"
        current.write_text("{}")
        with pytest.raises(SystemExit, match="no 'benchmarks' key"):
            script.main([baseline, str(current)])

    def test_zero_recorded_benchmarks_is_rejected(self, script, tmp_path):
        baseline = _write(tmp_path / "baseline.json", [_bench("a", 1.0)])
        current = _write(tmp_path / "current.json", [])
        with pytest.raises(SystemExit, match="contains no benchmarks"):
            script.main([baseline, str(current)])

    def test_missing_baseline_names_the_baseline_role(self, script, tmp_path):
        current = _write(tmp_path / "current.json", [_bench("a", 1.0)])
        with pytest.raises(SystemExit, match="cannot read the baseline results file"):
            script.main([str(tmp_path / "gone.json"), current])


class TestComparison:
    def test_clean_run_passes(self, script, tmp_path, capsys):
        baseline = _write(tmp_path / "baseline.json", [_bench("a", 1.0)])
        current = _write(tmp_path / "current.json", [_bench("a", 1.05)])
        assert script.main([baseline, current]) == 0
        assert "passed" in capsys.readouterr().out

    def test_regression_fails(self, script, tmp_path, capsys):
        baseline = _write(tmp_path / "baseline.json", [_bench("a", 1.0)])
        current = _write(tmp_path / "current.json", [_bench("a", 2.0)])
        assert script.main([baseline, current]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_benchmark_missing_from_current_run_fails(self, script, tmp_path, capsys):
        baseline = _write(
            tmp_path / "baseline.json", [_bench("a", 1.0), _bench("b", 1.0)]
        )
        current = _write(tmp_path / "current.json", [_bench("a", 1.0)])
        assert script.main([baseline, current]) == 1
        assert "missing" in capsys.readouterr().out

    def test_speedup_floor_enforced(self, script, tmp_path):
        baseline = _write(
            tmp_path / "baseline.json", [_bench("a", 1.0, speedup_vs_reference=70.0)]
        )
        current = _write(
            tmp_path / "current.json", [_bench("a", 1.0, speedup_vs_reference=5.0)]
        )
        assert script.main([baseline, current]) == 1

    def test_service_warm_vs_cold_floor_enforced(self, script, tmp_path):
        baseline = _write(
            tmp_path / "baseline.json", [_bench("svc", 1.0, warm_vs_cold_speedup=1500.0)]
        )
        current = _write(
            tmp_path / "current.json", [_bench("svc", 1.0, warm_vs_cold_speedup=3.0)]
        )
        assert script.main([baseline, current]) == 1

    def test_dropping_a_recorded_speedup_key_fails(self, script, tmp_path, capsys):
        baseline = _write(
            tmp_path / "baseline.json", [_bench("svc", 1.0, warm_vs_cold_speedup=1500.0)]
        )
        current = _write(tmp_path / "current.json", [_bench("svc", 1.0)])
        assert script.main([baseline, current]) == 1
        assert "floor check was skipped" in capsys.readouterr().out

    def test_current_only_benchmark_floor_enforced(self, script, tmp_path, capsys):
        """A bench absent from the baseline still has its floor checked.

        The compiled-kernel benches skip without numba, so a baseline
        regenerated on a numba-less machine omits them entirely; their
        self-relative speedup floors must bind wherever the bench does
        run (the numba CI leg).
        """
        baseline = _write(tmp_path / "baseline.json", [_bench("a", 1.0)])
        current = _write(
            tmp_path / "current.json",
            [_bench("a", 1.0), _bench("dag", 1.0, dag_compiled_speedup=1.2)],
        )
        assert script.main([baseline, current]) == 1
        assert "dag_compiled_speedup fell to 1.2x" in capsys.readouterr().out

    def test_current_only_benchmark_clearing_its_floor_passes(self, script, tmp_path):
        baseline = _write(tmp_path / "baseline.json", [_bench("a", 1.0)])
        current = _write(
            tmp_path / "current.json",
            [
                _bench("a", 1.0),
                _bench("dag", 1.0, dag_compiled_speedup=5.5),
                _bench("hier", 1.0, hier_compiled_speedup=3.0, hier_parallel_speedup=4.0),
            ],
        )
        assert script.main([baseline, current]) == 0
