"""Availability traces: validation, JSONL round trip, synthetic presets."""

import json

import pytest

from repro.resilience.traces import (
    EVENT_KINDS,
    PRESET_NAMES,
    AvailabilityTrace,
    TraceEvent,
    synthesize_trace,
)


class TestTraceEvent:
    def test_normalizes_time_and_sorts_nodes(self):
        event = TraceEvent(t=5, event="leave", nodes=(7, 3, 1))
        assert event.t == 5.0
        assert isinstance(event.t, float)
        assert event.nodes == (1, 3, 7)

    @pytest.mark.parametrize("kind", EVENT_KINDS)
    def test_known_kinds_accepted(self, kind):
        assert TraceEvent(t=0.0, event=kind, nodes=(0,)).event == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event"):
            TraceEvent(t=0.0, event="crash", nodes=(0,))

    @pytest.mark.parametrize("t", [True, "10", float("nan"), float("inf"), -1.0])
    def test_bad_times_rejected(self, t):
        with pytest.raises(ValueError):
            TraceEvent(t=t, event="leave", nodes=(0,))

    @pytest.mark.parametrize("nodes", [(), (0, 0), (-1,), (True,), (1.5,)])
    def test_bad_node_sets_rejected(self, nodes):
        with pytest.raises(ValueError):
            TraceEvent(t=0.0, event="leave", nodes=nodes)

    def test_json_round_trip(self):
        event = TraceEvent(t=12.5, event="join", nodes=(4, 2))
        assert TraceEvent.from_json(event.to_json()) == event

    def test_from_json_rejects_unknown_and_missing_keys(self):
        with pytest.raises(ValueError, match="unknown trace event keys"):
            TraceEvent.from_json({"t": 0.0, "event": "leave", "nodes": [0], "x": 1})
        with pytest.raises(ValueError, match="missing keys"):
            TraceEvent.from_json({"t": 0.0, "event": "leave"})

    def test_from_json_rejects_string_nodes(self):
        with pytest.raises(ValueError, match="must be a list"):
            TraceEvent.from_json({"t": 0.0, "event": "leave", "nodes": "03"})


class TestAvailabilityTrace:
    def _trace(self, *events, num_nodes=4, **kwargs):
        return AvailabilityTrace(num_nodes=num_nodes, events=tuple(events), **kwargs)

    def test_replay_tracks_membership(self):
        trace = self._trace(
            TraceEvent(1.0, "leave", (0, 2)),
            TraceEvent(2.0, "join", (2,)),
        )
        replayed = list(trace.replay())
        assert replayed[0][1] == (1, 3)
        assert replayed[1][1] == (1, 2, 3)

    def test_all_nodes_may_leave(self):
        trace = self._trace(TraceEvent(1.0, "leave", (0, 1, 2, 3)))
        (_, alive), = trace.replay()
        assert alive == ()

    def test_times_must_be_non_decreasing(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            self._trace(
                TraceEvent(2.0, "leave", (0,)),
                TraceEvent(1.0, "leave", (1,)),
            )

    def test_nodes_must_be_inside_the_fleet(self):
        with pytest.raises(ValueError, match="outside"):
            self._trace(TraceEvent(1.0, "leave", (9,)))

    def test_only_live_nodes_leave(self):
        with pytest.raises(ValueError, match="not alive"):
            self._trace(
                TraceEvent(1.0, "leave", (0,)),
                TraceEvent(2.0, "leave", (0,)),
            )

    def test_only_dead_nodes_join(self):
        with pytest.raises(ValueError, match="already alive"):
            self._trace(TraceEvent(1.0, "join", (0,)))

    def test_horizon_must_cover_the_last_event(self):
        with pytest.raises(ValueError, match="precedes the last event"):
            self._trace(TraceEvent(10.0, "leave", (0,)), horizon=5.0)

    @pytest.mark.parametrize("num_nodes", [0, -1, 1.5])
    def test_bad_fleet_sizes_rejected(self, num_nodes):
        with pytest.raises(ValueError, match="num_nodes"):
            AvailabilityTrace(num_nodes=num_nodes, events=())

    def test_end_time_prefers_horizon(self):
        event = TraceEvent(10.0, "leave", (0,))
        assert self._trace(event, horizon=99.0).end_time == 99.0
        assert self._trace(event).end_time == 10.0
        assert self._trace().end_time == 0.0


class TestJsonl:
    def test_round_trip_with_header(self):
        trace = AvailabilityTrace(
            num_nodes=8,
            events=(
                TraceEvent(1.0, "leave", (3,)),
                TraceEvent(2.0, "join", (3,)),
            ),
            horizon=60.0,
            preset="spot",
            seed=7,
        )
        assert AvailabilityTrace.from_jsonl(trace.to_jsonl()) == trace

    def test_header_omits_absent_metadata(self):
        trace = AvailabilityTrace(num_nodes=4, events=(TraceEvent(1.0, "leave", (0,)),))
        header = json.loads(trace.to_jsonl().splitlines()[0])
        assert header == {"num_nodes": 4}

    def test_headerless_text_needs_num_nodes(self):
        text = '{"t": 1.0, "event": "leave", "nodes": [0]}\n'
        trace = AvailabilityTrace.from_jsonl(text, num_nodes=4)
        assert trace.num_nodes == 4
        with pytest.raises(ValueError, match="num_nodes"):
            AvailabilityTrace.from_jsonl(text)

    def test_header_must_come_first(self):
        text = (
            '{"t": 1.0, "event": "leave", "nodes": [0]}\n'
            '{"num_nodes": 4}\n'
        )
        with pytest.raises(ValueError, match="first line"):
            AvailabilityTrace.from_jsonl(text)

    def test_malformed_lines_rejected(self):
        with pytest.raises(ValueError, match="not JSON"):
            AvailabilityTrace.from_jsonl("not json\n", num_nodes=4)
        with pytest.raises(ValueError, match="JSON object"):
            AvailabilityTrace.from_jsonl("[1, 2]\n", num_nodes=4)
        with pytest.raises(ValueError, match="unknown trace header keys"):
            AvailabilityTrace.from_jsonl('{"num_nodes": 4, "bogus": 1}\n')

    def test_save_load_round_trip(self, tmp_path):
        trace = synthesize_trace("rack", num_nodes=8, seed=3, num_events=6)
        path = tmp_path / "trace.jsonl"
        trace.save(str(path))
        assert AvailabilityTrace.load(str(path)) == trace


class TestSynthesize:
    @pytest.mark.parametrize("preset", PRESET_NAMES)
    def test_presets_are_valid_and_deterministic(self, preset):
        first = synthesize_trace(preset, num_nodes=16, seed=11, num_events=12)
        second = synthesize_trace(preset, num_nodes=16, seed=11, num_events=12)
        assert first == second
        assert first.to_jsonl() == second.to_jsonl()
        assert len(first.events) == 12
        assert first.preset == preset
        assert first.seed == 11
        # Replay exercises the membership validation end to end.
        for _, alive in first.replay():
            assert all(0 <= node < 16 for node in alive)

    def test_seeds_diverge(self):
        assert synthesize_trace("spot", seed=1) != synthesize_trace("spot", seed=2)

    def test_horizon_defaults_past_the_last_event(self):
        trace = synthesize_trace("spot", num_nodes=8, seed=0, num_events=4)
        assert trace.horizon == round(trace.events[-1].t + 300.0, 3)

    def test_argument_validation(self):
        with pytest.raises(ValueError, match="unknown trace preset"):
            synthesize_trace("chaos")
        with pytest.raises(ValueError, match="at least 2 nodes"):
            synthesize_trace("spot", num_nodes=1)
        with pytest.raises(ValueError, match="num_events"):
            synthesize_trace("spot", num_events=0)

    def test_describe_mentions_provenance(self):
        trace = synthesize_trace("diurnal", num_nodes=8, seed=5, num_events=4)
        text = trace.describe()
        assert "8 nodes" in text
        assert "[diurnal seed=5]" in text
