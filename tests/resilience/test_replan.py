"""Elastic re-planning: golden pinning, policy semantics, migration costs."""

import json
import pathlib

import pytest

from repro.resilience.replan import (
    ACTIONS,
    POLICIES,
    ElasticReplanner,
    ReplanConfig,
    run_replan,
)
from repro.resilience.traces import AvailabilityTrace, TraceEvent, synthesize_trace
from repro.sweep.artifacts import payload_to_json

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_replan.json"

#: The pinned scenario: also the CI chaos-smoke `hypar replan` golden.
GOLDEN_TRACE = dict(preset="spot", num_nodes=16, seed=7, num_events=8)
GOLDEN_CONFIG = dict(model="Lenet-c", batch_size=64, policy="every-event")


def _golden_report():
    trace = synthesize_trace(
        GOLDEN_TRACE["preset"],
        num_nodes=GOLDEN_TRACE["num_nodes"],
        seed=GOLDEN_TRACE["seed"],
        num_events=GOLDEN_TRACE["num_events"],
    )
    return run_replan(trace, ReplanConfig(**GOLDEN_CONFIG))


class TestGolden:
    def test_report_matches_the_pinned_golden_byte_for_byte(self):
        rendered = payload_to_json(_golden_report().to_payload())
        assert rendered == GOLDEN_PATH.read_text()

    def test_two_runs_are_byte_identical(self):
        first = payload_to_json(_golden_report().to_payload())
        second = payload_to_json(_golden_report().to_payload())
        assert first == second

    def test_write_artifacts_round_trip(self, tmp_path):
        report = _golden_report()
        paths = report.write_artifacts(str(tmp_path))
        assert pathlib.Path(paths["json"]).read_text() == payload_to_json(
            report.to_payload()
        )
        csv_text = pathlib.Path(paths["csv"]).read_text()
        assert csv_text.splitlines()[0].startswith("model,")
        assert len(csv_text.splitlines()) == len(report.segments) + 1


class TestTimeline:
    def test_segments_tile_the_horizon(self):
        trace = synthesize_trace("diurnal", num_nodes=8, seed=3, num_events=6)
        report = run_replan(trace, ReplanConfig(model="Lenet-c", batch_size=64))
        segments = report.segments
        assert segments[0]["t_start"] == 0.0
        assert segments[-1]["t_end"] == trace.end_time
        for before, after in zip(segments, segments[1:]):
            assert before["t_end"] == after["t_start"]
        for segment in segments:
            assert 0.0 <= segment["utilization"] <= 1.0

    def test_payload_is_json_round_trippable(self):
        payload = _golden_report().to_payload()
        assert json.loads(payload_to_json(payload)) == payload
        assert payload["trace"]["preset"] == "spot"
        assert payload["trace"]["seed"] == 7
        for event in payload["events"]:
            assert event["action"] in ACTIONS


class TestPolicies:
    def test_hysteresis_defers_voluntary_replans(self):
        trace = synthesize_trace(**{**GOLDEN_TRACE, "preset": "spot"})
        reports = {
            policy: run_replan(
                trace, ReplanConfig(**{**GOLDEN_CONFIG, "policy": policy})
            )
            for policy in POLICIES
        }
        eager = reports["every-event"].totals()
        lazy = reports["hysteresis"].totals()
        assert eager["replans"] == len(trace.events)
        assert eager["deferred"] == 0
        assert lazy["replans"] < eager["replans"]
        assert lazy["deferred"] + lazy["remaps"] > 0
        assert lazy["migration_gb"] <= eager["migration_gb"]

    def test_hysteresis_remaps_when_capacity_is_unchanged(self):
        # 4-node fleet: losing node 3 forces a shrink to 2 nodes; losing
        # node 0 afterwards leaves capacity at 2 so hysteresis just
        # refills the hole from the spare pool.
        trace = AvailabilityTrace(
            num_nodes=4,
            events=(
                TraceEvent(10.0, "leave", (3,)),
                TraceEvent(20.0, "leave", (0,)),
            ),
            horizon=30.0,
        )
        config = ReplanConfig(model="Lenet-c", batch_size=64, policy="hysteresis")
        report = run_replan(trace, config)
        actions = [event["action"] for event in report.events]
        assert actions == ["replan", "remap"]
        remap = report.events[1]
        # The refilled slot restores its shard over the wire.
        assert remap["migration_weight_gb"] + remap["migration_feature_gb"] > 0
        assert remap["used"] == 2
        # every-event re-plans instead of remapping on the same trace.
        eager = run_replan(
            trace, ReplanConfig(model="Lenet-c", batch_size=64, policy="every-event")
        )
        assert [event["action"] for event in eager.events] == ["replan", "replan"]

    def test_spare_node_churn_is_free_under_hysteresis(self):
        # Nodes 4..7 never make it into the 4-node plan after the first
        # shrink, so their churn must not trigger migration.
        trace = AvailabilityTrace(
            num_nodes=8,
            events=(
                TraceEvent(10.0, "leave", (6, 7)),
                TraceEvent(20.0, "leave", (5,)),
                TraceEvent(30.0, "join", (7,)),
            ),
            horizon=40.0,
        )
        config = ReplanConfig(model="Lenet-c", batch_size=64, policy="hysteresis")
        report = run_replan(trace, config)
        spare_events = report.events[1:]
        for event in spare_events:
            assert event["action"] == "none"
            assert event["migration_weight_gb"] == 0.0
            assert event["migration_feature_gb"] == 0.0
            assert event["migration_seconds"] == 0.0

    def test_fleet_down_and_recovery(self):
        trace = AvailabilityTrace(
            num_nodes=2,
            events=(
                TraceEvent(10.0, "leave", (0, 1)),
                TraceEvent(20.0, "join", (0,)),
            ),
            horizon=30.0,
        )
        report = run_replan(
            trace, ReplanConfig(model="Lenet-c", batch_size=64, policy="every-event")
        )
        down, recovery = report.events
        assert down["action"] == "down"
        assert down["used"] == 0
        assert down["num_levels"] is None
        assert recovery["action"] == "replan"
        assert recovery["used"] == 1
        # The downtime segment contributes zero utilization and throughput.
        down_segment = report.segments[1]
        assert down_segment["utilization"] == 0.0
        assert down_segment["step_seconds"] is None
        totals = report.totals()
        assert totals["downtime_events"] == 1
        assert 0.0 < totals["mean_utilization"] < 1.0

    def test_growing_back_costs_migration(self):
        trace = AvailabilityTrace(
            num_nodes=4,
            events=(
                TraceEvent(10.0, "leave", (2, 3)),
                TraceEvent(20.0, "join", (2, 3)),
            ),
            horizon=30.0,
        )
        report = run_replan(
            trace, ReplanConfig(model="Lenet-c", batch_size=64, policy="every-event")
        )
        grow = report.events[1]
        assert grow["action"] == "replan"
        assert grow["used"] == 4
        assert grow["migration_weight_gb"] + grow["migration_feature_gb"] > 0
        assert grow["projected_gain_seconds"] is not None


class TestConfig:
    def test_model_name_is_canonicalized(self):
        assert ReplanConfig(model="lenet_c").model == "Lenet-c"

    def test_validation(self):
        with pytest.raises(ValueError, match="policy"):
            ReplanConfig(policy="sometimes")
        with pytest.raises(ValueError, match="batch_size"):
            ReplanConfig(batch_size=0)
        with pytest.raises(ValueError, match="horizon_steps"):
            ReplanConfig(horizon_steps=0)
        with pytest.raises(ValueError, match="topology"):
            ReplanConfig(topology="ring")

    def test_warm_start_is_shared_across_the_run(self):
        report = _golden_report()
        warm = report.totals()["warm_start"]
        assert warm["full_hits"] > 0
        assert warm["cold_solves"] == 0

    def test_replanner_is_reusable(self):
        trace = synthesize_trace("spot", num_nodes=4, seed=1, num_events=3)
        replanner = ElasticReplanner(ReplanConfig(model="Lenet-c", batch_size=64))
        first = payload_to_json(replanner.run(trace).to_payload())
        second = payload_to_json(replanner.run(trace).to_payload())
        assert first == second
