"""Warm-start DP: bit-exactness with the cold solve across the model zoo."""

import dataclasses

import pytest

from repro.core.costs import CostTable, WarmStartDP
from repro.core.hierarchical import HierarchicalPartitioner, HierarchicalWarmStart
from repro.nn.model_zoo import all_model_builders

BATCH = 64

ZOO = sorted(all_model_builders())


def _assert_same_result(warm_result, cold_result):
    assert warm_result.assignment == cold_result.assignment
    assert warm_result.communication_bytes == cold_result.communication_bytes


@pytest.mark.parametrize("name", ZOO)
def test_warm_solve_matches_cold_solve(name):
    """Property: warm.solve(table) is bit-exact with table.dp_partition()."""
    model = all_model_builders()[name]()
    table = CostTable.compile(model, BATCH)
    cold = table.dp_partition()
    warm = WarmStartDP()
    _assert_same_result(warm.solve(table), cold)
    # The second solve of the unchanged table short-circuits for chains
    # and stays bit-exact either way.
    _assert_same_result(warm.solve(table), cold)
    stats = warm.stats()
    if table.is_chain:
        assert stats["full_hits"] == 1
        assert stats["cold_solves"] == 0
        assert stats["solved_layers"] == table.num_layers
    else:
        assert stats["cold_solves"] == 2
        assert stats["full_hits"] == 0


def test_suffix_mutation_reuses_the_prefix(lenet_model):
    table = CostTable.compile(lenet_model, BATCH)
    warm = WarmStartDP()
    warm.solve(table)

    intra = table.intra.copy()
    intra[-1] *= 1.5
    mutated = dataclasses.replace(table, intra=intra)
    _assert_same_result(warm.solve(mutated), mutated.dp_partition())
    assert warm.reused_layers == table.num_layers - 1


def test_first_layer_mutation_resolves_from_scratch(lenet_model):
    table = CostTable.compile(lenet_model, BATCH)
    warm = WarmStartDP()
    warm.solve(table)
    solved_before = warm.solved_layers

    intra = table.intra.copy()
    intra[0] *= 1.5
    mutated = dataclasses.replace(table, intra=intra)
    _assert_same_result(warm.solve(mutated), mutated.dp_partition())
    assert warm.reused_layers == 0
    assert warm.solved_layers == solved_before + table.num_layers


def test_different_strategy_space_shares_no_prefix(lenet_model):
    table = CostTable.compile(lenet_model, BATCH)
    warm = WarmStartDP()
    warm.solve(table)
    other = CostTable.compile(lenet_model, BATCH, strategies="dp,mp,pp")
    _assert_same_result(warm.solve(other), other.dp_partition())
    assert warm.reused_layers == 0


def test_hierarchical_warm_start_across_depths(vgg_a_model):
    """H=4 then H=3: the shallower solve reuses every level it shares."""
    deep = HierarchicalPartitioner(num_levels=4)
    shallow = HierarchicalPartitioner(num_levels=3)
    warm = HierarchicalWarmStart()

    deep_result = deep.partition(vgg_a_model, BATCH, warm=warm)
    _assert_same_result_levels(deep_result, deep.partition(vgg_a_model, BATCH))
    assert warm.stats()["full_hits"] == 0

    shallow_result = shallow.partition(vgg_a_model, BATCH, warm=warm)
    _assert_same_result_levels(shallow_result, shallow.partition(vgg_a_model, BATCH))
    # Levels 0..2 of the H=3 solve replay the H=4 frontier state.
    assert warm.stats()["full_hits"] == 3

    # Re-solving the deep configuration hits every level solver in full.
    before = warm.stats()["full_hits"]
    deep.partition(vgg_a_model, BATCH, warm=warm)
    assert warm.stats()["full_hits"] == before + 4


def _assert_same_result_levels(warm_result, cold_result):
    assert warm_result.assignment == cold_result.assignment
    assert warm_result.level_bytes() == cold_result.level_bytes()


def test_level_solvers_are_cached_per_level():
    warm = HierarchicalWarmStart()
    assert warm.level_solver(2) is warm.level_solver(2)
    assert warm.level_solver(2) is not warm.level_solver(3)
    assert warm.stats() == {
        "full_hits": 0,
        "reused_layers": 0,
        "solved_layers": 0,
        "cold_solves": 0,
    }
