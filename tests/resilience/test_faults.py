"""Fault plans, the injector's ordinal counters, and cache resilience."""

import warnings

import pytest

from repro.resilience.faults import (
    PRESET_NAMES,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    faulty_map,
)
from repro.service.cache import ResultCache
from repro.sweep.engine import SweepEngine


class TestFaultPlan:
    def test_defaults_are_fault_free(self):
        plan = FaultPlan()
        assert plan.describe() == "no faults"

    def test_schedules_are_sorted_and_deduplicated(self):
        plan = FaultPlan(kill_tasks=(3, 1, 3), drop_requests=(2, 2, 0))
        assert plan.kill_tasks == (1, 3)
        assert plan.drop_requests == (0, 2)

    @pytest.mark.parametrize("bad", [(-1,), (True,), (1.5,)])
    def test_bad_ordinals_rejected(self, bad):
        with pytest.raises(ValueError, match="integers >= 0"):
            FaultPlan(poison_stores=bad)

    def test_negative_delays_rejected(self):
        with pytest.raises(ValueError, match="delays"):
            FaultPlan(delay_seconds=-0.1)
        with pytest.raises(ValueError, match="delays"):
            FaultPlan(compute_delay_seconds=-1.0)

    @pytest.mark.parametrize("name", PRESET_NAMES)
    def test_presets_resolve(self, name):
        plan = FaultPlan.preset(name, seed=1)
        assert plan.describe() != "no faults"
        # Presets are deterministic given the seed.
        assert plan == FaultPlan.preset(name, seed=1)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown fault preset"):
            FaultPlan.preset("meteor")

    def test_describe_names_every_schedule(self):
        plan = FaultPlan(
            kill_tasks=(1,),
            drop_requests=(0,),
            delay_requests=(2,),
            poison_stores=(0,),
            compute_errors=(3,),
            compute_delays=(4,),
            compute_delay_seconds=0.5,
        )
        text = plan.describe()
        for fragment in ("kill", "drop", "delay", "poison", "fail", "stall"):
            assert fragment in text


class TestFaultInjector:
    def test_connection_actions_follow_the_ordinals(self):
        injector = FaultInjector(FaultPlan(drop_requests=(0, 2), delay_requests=(1,)))
        actions = [injector.connection_action() for _ in range(4)]
        assert actions == ["drop", "delay", "drop", None]
        stats = injector.stats()
        assert stats["dropped"] == 2
        assert stats["delayed"] == 1

    def test_on_compute_raises_and_delays_on_schedule(self):
        injector = FaultInjector(
            FaultPlan(
                compute_errors=(1,),
                compute_delays=(0,),
                compute_delay_seconds=0.25,
            )
        )
        assert injector.on_compute() == 0.25
        with pytest.raises(FaultInjected, match="ordinal 1"):
            injector.on_compute()
        assert injector.on_compute() == 0.0
        stats = injector.stats()
        assert stats["compute_errors"] == 1
        assert stats["compute_delays"] == 1

    def test_note_store_poisons_the_scheduled_store(self):
        cache = ResultCache(limit=4)
        injector = FaultInjector(FaultPlan(poison_stores=(0,)))
        value, hit = cache.get_or_compute("key", lambda: b"payload")
        assert (value, hit) == (b"payload", False)
        injector.note_store(cache, "key")
        assert injector.stats()["poisoned"] == 1
        # The next lookup fails the integrity check and recomputes the
        # original bytes instead of serving the corrupted entry.
        value, hit = cache.get_or_compute("key", lambda: b"payload")
        assert (value, hit) == (b"payload", False)
        assert cache.stats()["poisoned"] == 1
        # A later store is past the schedule and survives untouched.
        cache.get_or_compute("other", lambda: b"other")
        injector.note_store(cache, "other")
        assert cache.get_or_compute("other", lambda: b"?") == (b"other", True)

    def test_note_store_ignores_non_bytes_entries(self):
        cache = ResultCache(limit=4)
        injector = FaultInjector(FaultPlan(poison_stores=(0,)))
        cache.get_or_compute("key", lambda: {"not": "bytes"})
        injector.note_store(cache, "key")
        assert injector.stats()["poisoned"] == 0
        assert cache.get_or_compute("key", lambda: None) == ({"not": "bytes"}, True)


class TestCacheResilience:
    def test_stale_store_survives_eviction(self):
        cache = ResultCache(limit=2)
        cache.get_or_compute("a", lambda: b"A")
        cache.get_or_compute("b", lambda: b"B")
        cache.get_or_compute("a", lambda: b"?")  # hit: "b" is now LRU
        cache.get_or_compute("c", lambda: b"C")  # evicts "b"
        assert "b" not in cache
        assert cache.get_stale("b") == b"B"
        assert cache.get_stale("c") == b"C"
        assert cache.get_stale("missing") is None

    def test_stale_store_is_bounded_by_the_limit(self):
        cache = ResultCache(limit=2)
        for index in range(5):
            cache.get_or_compute(f"k{index}", lambda index=index: b"%d" % index)
        assert cache.stats()["stale_size"] == 2
        assert cache.get_stale("k4") == b"4"
        assert cache.get_stale("k0") is None

    def test_poison_only_corrupts_bytes(self):
        cache = ResultCache(limit=4)
        cache.get_or_compute("obj", lambda: {"a": 1})
        assert cache.poison("obj") is False
        assert cache.poison("missing") is False
        cache.get_or_compute("raw", lambda: b"raw")
        assert cache.poison("raw") is True

    def test_clear_resets_the_resilience_state(self):
        cache = ResultCache(limit=4)
        cache.get_or_compute("a", lambda: b"A")
        cache.poison("a")
        cache.get_or_compute("a", lambda: b"A")  # counts the poisoning
        cache.clear()
        stats = cache.stats()
        assert stats["poisoned"] == 0
        assert stats["stale_size"] == 0
        assert cache.get_stale("a") is None


def _double(x: int) -> int:
    """Module-level so the process pool can pickle it."""
    return 2 * x


class TestFaultyMap:
    def test_kills_never_fire_in_the_parent_process(self):
        plan = FaultPlan(kill_tasks=(0, 2))
        engine = SweepEngine.serial()
        assert faulty_map(engine, _double, list(range(6)), plan) == [
            2 * x for x in range(6)
        ]
        assert engine.pool_degraded is False

    def test_worker_kill_degrades_to_an_identical_serial_run(self):
        plan = FaultPlan.preset("worker-kill", seed=1)
        tasks = list(range(8))
        expected = faulty_map(SweepEngine.serial(), _double, tasks, plan)
        with SweepEngine(workers=2) as engine:
            with pytest.warns(RuntimeWarning, match="process pool failed"):
                results = faulty_map(engine, _double, tasks, plan)
            assert results == expected
            assert engine.pool_active is False
            assert engine.pool_degraded is True
            # Later maps stay on the (correct) serial path, silently.
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert engine.map(_double, tasks) == expected
