"""The profile-pack validation script's exit codes and messages.

Same loading idiom as ``test_check_bench_regression.py``: the script is
imported by path so these tests exercise exactly what CI runs.  The exit
contract is the interesting part -- 0 all-valid, 1 schema violations
(every one listed), 2 unreadable/non-JSON -- because CI gates the shipped
packs on it.
"""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

from repro.core.costmodel import PROFILE_SCHEMA, shipped_profiles

_SCRIPT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "scripts",
    "validate_profile.py",
)


def _load_script():
    spec = importlib.util.spec_from_file_location("validate_profile", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def script():
    return _load_script()


def _valid_payload() -> dict:
    return {
        "schema": PROFILE_SCHEMA,
        "name": "scripted",
        "description": "synthetic",
        "precision_bytes": 4,
        "reference_bandwidth": 1.0e9,
        "links": {
            "intra": {"bandwidth": [1e9, 1e9, 1e9], "latency": [0.0, 0.0, 0.0]},
            "inter": {"bandwidth": [5e8, 5e8, 5e8], "latency": [1e-6, 1e-6, 1e-6]},
        },
        "layers": {},
    }


class TestExitCodes:
    def test_valid_pack_exits_zero_and_prints_the_fit(self, script, tmp_path, capsys):
        path = tmp_path / "pack.json"
        path.write_text(json.dumps(_valid_payload()))
        assert script.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "inter x2" in out  # 1e9 reference over 5e8 fitted

    def test_all_shipped_packs_exit_zero(self, script):
        assert script.main(sorted(shipped_profiles().values())) == 0

    def test_schema_violation_exits_one_listing_every_error(
        self, script, tmp_path, capsys
    ):
        payload = _valid_payload()
        payload["name"] = ""
        payload["precision_bytes"] = 0
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(payload))
        assert script.main([str(path)]) == 1
        err = capsys.readouterr().err
        assert "name must be" in err
        assert "precision_bytes" in err

    def test_missing_file_exits_two(self, script, tmp_path, capsys):
        assert script.main([str(tmp_path / "absent.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_non_json_file_exits_two(self, script, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        assert script.main([str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_worst_failure_wins_across_multiple_files(self, script, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_valid_payload()))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        assert script.main([str(good), str(bad)]) == 1
        assert script.main([str(good), str(tmp_path / "gone.json"), str(bad)]) == 2
        capsys.readouterr()
