"""Property-based tests for the discrete-event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import EventDrivenEngine

durations = st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False)


@st.composite
def random_task_graphs(draw):
    """Random DAGs: each task may depend on any subset of earlier tasks and
    use one of a few shared resources."""
    num_tasks = draw(st.integers(min_value=1, max_value=15))
    num_resources = draw(st.integers(min_value=0, max_value=3))
    graph = []
    for index in range(num_tasks):
        deps = sorted(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=index - 1), max_size=min(index, 3)
                )
            )
        ) if index else []
        resource = (
            draw(st.integers(min_value=0, max_value=num_resources - 1))
            if num_resources
            else None
        )
        graph.append((draw(durations), deps, resource))
    return graph


def _build(engine, graph):
    tasks = []
    for index, (duration, deps, resource) in enumerate(graph):
        resources = (engine.resource(f"r{resource}"),) if resource is not None else ()
        tasks.append(
            engine.add_task(
                f"t{index}",
                duration,
                resources=resources,
                deps=tuple(tasks[d] for d in deps),
            )
        )
    return tasks


class TestScheduleInvariants:
    @settings(max_examples=100, deadline=None)
    @given(random_task_graphs())
    def test_all_tasks_scheduled_with_correct_durations(self, graph):
        engine = EventDrivenEngine()
        _build(engine, graph)
        schedule = engine.run()
        assert len(schedule.tasks) == len(graph)
        for index, (duration, _, _) in enumerate(graph):
            task = schedule.task(f"t{index}")
            assert abs(task.duration - duration) < 1e-9
            assert task.start >= 0

    @settings(max_examples=100, deadline=None)
    @given(random_task_graphs())
    def test_dependencies_respected(self, graph):
        engine = EventDrivenEngine()
        _build(engine, graph)
        schedule = engine.run()
        for index, (_, deps, _) in enumerate(graph):
            task = schedule.task(f"t{index}")
            for dep in deps:
                assert schedule.task(f"t{dep}").end <= task.start + 1e-9

    @settings(max_examples=100, deadline=None)
    @given(random_task_graphs())
    def test_resources_never_double_booked(self, graph):
        engine = EventDrivenEngine()
        _build(engine, graph)
        schedule = engine.run()
        by_resource = {}
        for index, (_, _, resource) in enumerate(graph):
            if resource is None:
                continue
            by_resource.setdefault(resource, []).append(schedule.task(f"t{index}"))
        for tasks in by_resource.values():
            intervals = sorted((t.start, t.end) for t in tasks)
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2 + 1e-9

    @settings(max_examples=100, deadline=None)
    @given(random_task_graphs())
    def test_makespan_bounds(self, graph):
        engine = EventDrivenEngine()
        _build(engine, graph)
        schedule = engine.run()
        total = sum(duration for duration, _, _ in graph)
        longest = max(duration for duration, _, _ in graph)
        assert longest - 1e-9 <= schedule.makespan <= total + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(random_task_graphs())
    def test_serial_resource_busy_time_bounded_by_makespan(self, graph):
        engine = EventDrivenEngine()
        _build(engine, graph)
        schedule = engine.run()
        busy = {}
        for index, (duration, _, resource) in enumerate(graph):
            if resource is not None:
                busy[resource] = busy.get(resource, 0.0) + duration
        for total_busy in busy.values():
            assert total_busy <= schedule.makespan + 1e-9
