"""Property-based tests for shape arithmetic and model construction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers import ConvLayer, FCLayer, PoolSpec
from repro.nn.model import build_model
from repro.nn.shapes import FeatureMapShape, conv_output_shape, pool_output_shape

dimensions = st.integers(min_value=1, max_value=64)
channels = st.integers(min_value=1, max_value=128)


@st.composite
def feature_map_shapes(draw):
    return FeatureMapShape(draw(dimensions), draw(dimensions), draw(channels))


class TestShapeProperties:
    @given(feature_map_shapes())
    def test_elements_positive(self, shape):
        assert shape.elements > 0

    @given(feature_map_shapes())
    def test_flatten_is_idempotent_and_preserves_elements(self, shape):
        flat = shape.flattened()
        assert flat.elements == shape.elements
        assert flat.flattened() == flat

    @given(
        in_dim=st.integers(min_value=8, max_value=128),
        in_channels=channels,
        kernel=st.integers(min_value=1, max_value=7),
        out_channels=channels,
        stride=st.integers(min_value=1, max_value=3),
        padding=st.integers(min_value=0, max_value=3),
    )
    def test_conv_output_never_larger_than_padded_input(
        self, in_dim, in_channels, kernel, out_channels, stride, padding
    ):
        shape = FeatureMapShape(in_dim, in_dim, in_channels)
        out = conv_output_shape(shape, kernel, out_channels, stride, padding)
        assert out.height <= in_dim + 2 * padding
        assert out.width <= in_dim + 2 * padding
        assert out.channels == out_channels

    @given(
        in_dim=st.integers(min_value=2, max_value=128),
        pool=st.integers(min_value=1, max_value=4),
    )
    def test_pooling_never_grows_the_map(self, in_dim, pool):
        if pool > in_dim:
            return
        shape = FeatureMapShape(in_dim, in_dim, 8)
        out = pool_output_shape(shape, pool)
        assert out.height <= in_dim
        assert out.channels == shape.channels

    @given(
        in_dim=st.integers(min_value=4, max_value=64),
        pool=st.integers(min_value=2, max_value=4),
    )
    def test_ceil_mode_never_smaller_than_floor_mode(self, in_dim, pool):
        shape = FeatureMapShape(in_dim, in_dim, 4)
        floor = pool_output_shape(shape, pool)
        ceil = pool_output_shape(shape, pool, ceil_mode=True)
        assert ceil.height >= floor.height
        assert ceil.height - floor.height <= 1


@st.composite
def random_models(draw):
    """Random small conv+fc stacks with consistent shapes."""
    input_size = draw(st.sampled_from([16, 24, 32]))
    input_channels = draw(st.integers(min_value=1, max_value=4))
    num_conv = draw(st.integers(min_value=0, max_value=3))
    num_fc = draw(st.integers(min_value=1, max_value=3))
    specs = []
    for index in range(num_conv):
        specs.append(
            ConvLayer(
                name=f"conv{index}",
                out_channels=draw(st.integers(min_value=1, max_value=32)),
                kernel_size=3,
                padding=1,
                pool=PoolSpec(2) if draw(st.booleans()) else None,
            )
        )
    for index in range(num_fc):
        specs.append(
            FCLayer(name=f"fc{index}", out_features=draw(st.integers(min_value=1, max_value=256)))
        )
    return build_model("random", (input_size, input_size, input_channels), specs)


class TestModelProperties:
    @settings(max_examples=50)
    @given(random_models())
    def test_layer_count_and_indices(self, model):
        assert len(model) == model.num_conv_layers + model.num_fc_layers
        assert [layer.index for layer in model] == list(range(len(model)))

    @settings(max_examples=50)
    @given(random_models())
    def test_shapes_chain(self, model):
        for previous, current in zip(model, list(model)[1:]):
            if current.is_fc:
                assert current.input_shape.elements == previous.post_pool_shape.elements
            else:
                assert current.input_shape == previous.post_pool_shape

    @settings(max_examples=50)
    @given(random_models())
    def test_weights_and_macs_positive(self, model):
        for layer in model:
            assert layer.weight_count > 0
            assert layer.macs_per_sample > 0

    @settings(max_examples=30)
    @given(random_models(), st.integers(min_value=1, max_value=512))
    def test_total_macs_linear_in_batch(self, model, batch):
        assert model.total_macs(batch) == batch * model.total_macs(1)
