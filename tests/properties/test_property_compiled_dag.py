"""Bit-exactness properties of the compiled DAG and hierarchical fast paths.

PR 8 extends the compiled (numba) kernel backend beyond chains: the DAG
cut-vertex DP enumerates its branch interiors in an ``@njit`` block
scorer, the hierarchical level scorers run as kernels, a
``"compiled-parallel"`` leg scores candidates under ``prange``, and the
cut-vertex program gains the chain DP's repeated-block memoization for
residual transformer DAGs (``gpt_r``).  Every one of those paths promises
*bit-exact* agreement with the cold NumPy oracle; these tests drive them
over the branching zoo, random DAGs and periodic residual stacks and
assert exact float equality.

When numba is absent (the default local environment) the compiled
backends silently run the NumPy path, so the backend properties hold
trivially here and bind for real in the numba CI leg; the dispatch-counter
tests flip accordingly and prove the kernels actually *executed* wherever
numba is present.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.core import kernels
from repro.core.costs import DAG_JUMP_STATS, CostTable, HierarchicalCostTable
from repro.core.exhaustive import enumerate_restricted_communication
from repro.core.parallelism import HierarchicalAssignment, Parallelism
from repro.core.tensors import LayerTensors, model_tensors
from repro.nn.model_zoo import gpt_r, inception_s, lenet_c, resnet_s

COMPILED_BACKENDS = ["compiled", "compiled-parallel"]

# Integer byte-like amounts keep every cost a small exact float -- the
# regime where the DAG block jump's exactness certificate admits the
# translation (the parity properties themselves hold for any floats).
int_amounts = st.integers(min_value=1, max_value=1 << 24)


def _layer(index: int, feature_in: int, feature_out: int, weight: int) -> LayerTensors:
    return LayerTensors(
        layer_index=index,
        layer_name=f"layer{index}",
        is_conv=False,
        feature_in=float(feature_in),
        feature_out=float(feature_out),
        weight=float(weight),
        macs=float(weight),
    )


@st.composite
def random_dag_tables(draw, max_layers=7):
    """Tensors plus a random DAG edge list (chain + up to two skips).

    Small enough that the full ``K**L`` space is enumerable, so the
    cut-vertex DP can be checked against the brute-force scorer minimum
    as well as across backends.  Skip edges may share a destination with
    the chain edge (a merge layer) and are appended *after* the chain
    edges, exercising the kernels' stable destination grouping.
    """
    count = draw(st.integers(min_value=3, max_value=max_layers), label="layers")
    tensors = [
        _layer(index, draw(int_amounts), draw(int_amounts), draw(int_amounts))
        for index in range(count)
    ]
    edges = [(index, index + 1) for index in range(count - 1)]
    num_skips = draw(st.integers(min_value=0, max_value=2), label="skips")
    for _ in range(num_skips):
        source = draw(st.integers(min_value=0, max_value=count - 3), label="src")
        destination = draw(
            st.integers(min_value=source + 2, max_value=count - 1), label="dst"
        )
        if (source, destination) not in edges:
            edges.append((source, destination))
    return tensors, edges


@st.composite
def periodic_residual_tables(draw, min_repeats=6, max_repeats=24):
    """A stem, repeated identical blocks with a skip edge each, and a head.

    The residual-transformer shape: block-periodic costs *and*
    block-periodic edge structure, so the DAG repetition memoizer's
    detector sees a periodic cut-segment region (the jump itself still
    requires steady state plus the exactness certificate, and simply
    declines otherwise -- either way the result must stay bit-exact).
    """
    block_len = draw(st.integers(min_value=3, max_value=4), label="block_len")
    repeats = draw(
        st.integers(min_value=min_repeats, max_value=max_repeats), label="repeats"
    )
    block = [
        (draw(int_amounts), draw(int_amounts), draw(int_amounts))
        for _ in range(block_len)
    ]
    stem = (draw(int_amounts), draw(int_amounts), draw(int_amounts))
    head = (draw(int_amounts), draw(int_amounts), draw(int_amounts))
    rows = [stem] + block * repeats + [head]
    tensors = [
        _layer(index, fin, fout, weight)
        for index, (fin, fout, weight) in enumerate(rows)
    ]
    edges = [(index, index + 1) for index in range(len(rows) - 1)]
    # One skip per repeated block, spanning its first interior layer.
    for repeat in range(repeats):
        start = 1 + repeat * block_len
        edges.append((start, start + 2))
    return tensors, edges


class TestCompiledDagDP:
    @settings(max_examples=40, deadline=None)
    @given(table=random_dag_tables(), backend=st.sampled_from(COMPILED_BACKENDS))
    def test_compiled_dag_dp_matches_numpy_and_brute_force(self, table, backend):
        tensors, edges = table
        numpy_table = CostTable.from_tensors(tensors, edges=edges, backend="numpy")
        compiled_table = CostTable.from_tensors(tensors, edges=edges, backend=backend)
        a = numpy_table.dp_partition()
        b = compiled_table.dp_partition()
        assert a.communication_bytes == b.communication_bytes
        assert a.assignment.choices == b.assignment.choices
        _, brute = numpy_table.argmin_assignment()
        assert a.communication_bytes == brute

    @settings(max_examples=40, deadline=None)
    @given(table=random_dag_tables(), backend=st.sampled_from(COMPILED_BACKENDS))
    def test_compiled_dag_scorer_matches_numpy(self, table, backend):
        tensors, edges = table
        numpy_table = CostTable.from_tensors(tensors, edges=edges, backend="numpy")
        compiled_table = CostTable.from_tensors(tensors, edges=edges, backend=backend)
        codes = np.arange(numpy_table.num_assignments, dtype=np.int64)
        assert np.array_equal(
            compiled_table.score_codes(codes), numpy_table.score_codes(codes)
        )

    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    @pytest.mark.parametrize("builder", [resnet_s, inception_s, gpt_r])
    def test_branching_zoo_compiled_dp_matches_numpy(self, builder, backend):
        tensors = model_tensors(builder(), 64)
        edges = builder().edges
        numpy_table = CostTable.from_tensors(tensors, edges=edges, backend="numpy")
        compiled_table = CostTable.from_tensors(tensors, edges=edges, backend=backend)
        a = numpy_table.dp_partition()
        b = compiled_table.dp_partition()
        assert a.communication_bytes == b.communication_bytes
        assert a.assignment.choices == b.assignment.choices


class TestDagRepeatedBlockMemoization:
    @settings(max_examples=30, deadline=None)
    @given(table=periodic_residual_tables())
    def test_memoized_dag_dp_is_bit_exact_with_cold(self, table):
        tensors, edges = table
        cost_table = CostTable.from_tensors(tensors, edges=edges)
        memoized = cost_table.dp_partition(memoize=True)
        cold = cost_table.dp_partition(memoize=False)
        assert memoized.communication_bytes == cold.communication_bytes
        assert memoized.assignment.choices == cold.assignment.choices

    def test_block_jump_fires_on_gpt_r_at_depth(self):
        """The DAG periodic-block jump actually engages on ``gpt_r``.

        A 64-block residual transformer has ~129 cut segments alternating
        with period two; integer tensor amounts let the exactness
        certificate admit the jump.  If a refactor silently degrades the
        cut-vertex program to cold stepping, the jump statistics stay
        flat and this test (not just a benchmark) catches it.
        """
        table = CostTable.compile(gpt_r(64), 256)
        before = dict(DAG_JUMP_STATS)
        memoized = table.dp_partition()
        after = dict(DAG_JUMP_STATS)
        assert after["jumps"] > before["jumps"]
        assert after["jumped_blocks"] > before["jumped_blocks"]
        cold = table.dp_partition(memoize=False)
        assert memoized.communication_bytes == cold.communication_bytes
        assert memoized.assignment.choices == cold.assignment.choices

    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    def test_gpt_r_compiled_memoized_matches_numpy_cold(self, backend):
        """Memoizer and compiled kernels compose on the residual stack."""
        model = gpt_r(32)
        compiled_table = CostTable.compile(model, 64, backend=backend)
        numpy_table = CostTable.compile(model, 64, backend="numpy")
        a = compiled_table.dp_partition()
        b = numpy_table.dp_partition(memoize=False)
        assert a.communication_bytes == b.communication_bytes
        assert a.assignment.choices == b.assignment.choices


class TestCompiledHierarchicalScorers:
    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    @pytest.mark.parametrize("builder", [lenet_c, resnet_s])
    def test_hier_score_codes_matches_numpy(self, builder, backend):
        model = builder()
        numpy_table = HierarchicalCostTable(model, 64, 2, backend="numpy")
        compiled_table = HierarchicalCostTable(model, 64, 2, backend=backend)
        codes = np.arange(numpy_table.num_assignments, dtype=np.int64)
        assert np.array_equal(
            compiled_table.score_codes(codes), numpy_table.score_codes(codes)
        )
        assert compiled_table.argmin_assignment() == numpy_table.argmin_assignment()

    def test_parallel_scorer_tiny_chunks_are_byte_identical(self):
        """Chunk boundaries never leak into the prange leg's totals."""
        table = HierarchicalCostTable(resnet_s(), 64, 2, backend="compiled-parallel")
        codes = np.arange(table.num_assignments, dtype=np.int64)
        baseline = table.score_codes(codes)
        for chunk in (1, 3, 7):
            assert np.array_equal(table.score_codes(codes, chunk_size=chunk), baseline)

    @pytest.mark.parametrize("backend", COMPILED_BACKENDS)
    def test_restricted_sweep_rides_the_compiled_table(self, backend):
        model = resnet_s()
        numpy_table = HierarchicalCostTable(model, 64, 4, backend="numpy")
        compiled_table = HierarchicalCostTable(model, 64, 4, backend=backend)
        base = HierarchicalAssignment.uniform(Parallelism.DATA, 4, len(model))
        free = [(0, 0), (1, 2), (2, 5), (0, 3)]
        baseline = enumerate_restricted_communication(
            model, 64, base, free, table=numpy_table
        )
        compiled = enumerate_restricted_communication(
            model, 64, base, free, table=compiled_table
        )
        assert np.array_equal(compiled, baseline)


class TestKernelDispatchCounters:
    """`--backend compiled` must *execute* kernels, not silently fall back.

    With numba present the counters prove the dispatch happened; without
    it they prove the graceful fallback stayed on the NumPy path.
    """

    def setup_method(self):
        kernels.reset_dispatch_counts()

    def test_dag_dp_dispatches_block_kernel(self):
        CostTable.compile(resnet_s(), 64, backend="compiled").dp_partition()
        counts = kernels.dispatch_counts()
        if kernels.NUMBA_AVAILABLE:
            assert counts["dag_block"] > 0
        else:
            assert counts["dag_block"] == 0

    def test_hierarchical_scoring_dispatches_level_kernel(self):
        table = HierarchicalCostTable(resnet_s(), 64, 2, backend="compiled")
        table.score_codes(np.arange(256, dtype=np.int64))
        counts = kernels.dispatch_counts()
        if kernels.NUMBA_AVAILABLE:
            assert counts["hier_level"] > 0
        else:
            assert counts["hier_level"] == 0

    def test_parallel_backend_dispatches_scorer_kernels(self):
        chain = CostTable.compile(lenet_c(), 64, backend="compiled-parallel")
        chain.score_codes(np.arange(chain.num_assignments, dtype=np.int64))
        dag = CostTable.compile(resnet_s(), 64, backend="compiled-parallel")
        dag.score_codes(np.arange(64, dtype=np.int64))
        counts = kernels.dispatch_counts()
        if kernels.NUMBA_AVAILABLE:
            assert counts["chain_score"] > 0
            assert counts["dag_score"] > 0
        else:
            assert counts["chain_score"] == 0
            assert counts["dag_score"] == 0
