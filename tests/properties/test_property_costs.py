"""Property-based bit-exactness tests for the vectorized cost engine.

The vectorized :class:`~repro.core.costs.CostTable` /
:class:`~repro.core.costs.HierarchicalCostTable` paths promise *bit-exact*
agreement with the object-based reference path -- not just approximate
equality: same optimum bytes, same argmin assignment under the documented
dp-tie rule, and identical totals for every candidate of an enumeration.
These tests drive both paths over random models, batch sizes, scales and
tensor chains and assert exact float equality throughout.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np

from repro.core.communication import CommunicationModel
from repro.core.costs import CostTable, HierarchicalCostTable
from repro.core.exhaustive import (
    exhaustive_two_way,
    exhaustive_two_way_reference,
)
from repro.core.hierarchical import HierarchicalPartitioner
from repro.core.parallelism import (
    HierarchicalAssignment,
    LayerAssignment,
    StrategySpace,
)
from repro.core.partitioner import TwoWayPartitioner
from repro.core.tensors import (
    LayerTensors,
    ScalingMode,
    TensorScale,
    model_tensors,
)
from repro.nn.layers import Activation, ConvLayer, FCLayer
from repro.nn.model import build_model
from repro.nn.shapes import MergeOp

amounts = st.floats(min_value=1.0, max_value=1e8, allow_nan=False, allow_infinity=False)


@st.composite
def tensor_chains(draw, min_layers=1, max_layers=8):
    count = draw(st.integers(min_value=min_layers, max_value=max_layers))
    return [
        LayerTensors(
            layer_index=index,
            layer_name=f"layer{index}",
            is_conv=draw(st.booleans()),
            feature_in=draw(amounts),
            feature_out=draw(amounts),
            weight=draw(amounts),
            macs=draw(amounts),
        )
        for index in range(count)
    ]


@st.composite
def small_models(draw, max_layers=4):
    """Random conv/fc stacks (conv layers first, as shapes require)."""
    num_conv = draw(st.integers(min_value=0, max_value=max_layers - 1))
    num_fc = draw(st.integers(min_value=1, max_value=max_layers - num_conv))
    specs = [
        ConvLayer(
            name=f"conv{i}",
            out_channels=draw(st.integers(min_value=1, max_value=24)),
            kernel_size=3,
            padding=1,
        )
        for i in range(num_conv)
    ]
    specs += [
        FCLayer(name=f"fc{i}", out_features=draw(st.integers(min_value=1, max_value=256)))
        for i in range(num_fc)
    ]
    return build_model("random", (8, 8, 3), specs)


@st.composite
def tensor_scales(draw, num_layers):
    """Per-layer scales as they occur in real descents (powers of two)."""
    return [
        TensorScale(
            batch_fraction=0.5 ** draw(st.integers(min_value=0, max_value=4)),
            weight_fraction=0.5 ** draw(st.integers(min_value=0, max_value=4)),
        )
        for _ in range(num_layers)
    ]


batch_sizes = st.sampled_from([1, 8, 32, 256, 1024])


@st.composite
def dag_edges(draw, num_layers):
    """A random layer DAG over ``num_layers`` layers, in canonical edge order.

    Every layer except the first draws one to three distinct predecessors;
    dangling outputs are wired into the final layer, matching the model
    invariant that only the sink has no consumer.
    """
    inputs: list[list[int]] = [[]]
    for layer in range(1, num_layers):
        count = draw(
            st.integers(min_value=1, max_value=min(3, layer)), label="fan_in"
        )
        sources = draw(
            st.lists(
                st.integers(min_value=0, max_value=layer - 1),
                min_size=count,
                max_size=count,
                unique=True,
            ),
            label="sources",
        )
        inputs.append(sorted(sources))
    consumed = {source for layer_inputs in inputs for source in layer_inputs}
    for layer in range(num_layers - 1):
        if layer not in consumed and layer not in inputs[-1]:
            inputs[-1].append(layer)
    inputs[-1].sort()
    return tuple(
        (source, layer) for layer in range(num_layers) for source in inputs[layer]
    )


@st.composite
def small_dag_models(draw, max_layers=6):
    """Random branching conv networks with ADD and CONCAT merge points.

    Every convolution is 3x3 / pad 1, so all feature maps share the input's
    spatial dimensions and any pair of branches can merge; ``ADD`` is drawn
    only when the branch shapes coincide, ``CONCAT`` otherwise.
    """
    num_layers = draw(st.integers(min_value=2, max_value=max_layers), label="layers")
    edges = draw(dag_edges(num_layers), label="edges")
    inputs: list[list[int]] = [[] for _ in range(num_layers)]
    for source, destination in edges:
        inputs[destination].append(source)
    channel_choices = st.sampled_from([2, 3, 4, 6])
    specs = []
    channels: list[int] = []
    for layer in range(num_layers):
        out_channels = draw(channel_choices, label="channels")
        if len(inputs[layer]) > 1:
            branch_channels = {channels[source] for source in inputs[layer]}
            if len(branch_channels) == 1 and draw(st.booleans(), label="merge_add"):
                merge = MergeOp.ADD
            else:
                merge = MergeOp.CONCAT
        else:
            merge = MergeOp.ADD
        specs.append(
            ConvLayer(
                name=f"conv{layer}",
                out_channels=out_channels,
                kernel_size=3,
                padding=1,
                activation=Activation.RELU,
                inputs=tuple(f"conv{source}" for source in inputs[layer]) or None,
                merge=merge,
            )
        )
        channels.append(out_channels)
    return build_model("random-dag", (5, 5, 2), specs)


class TestCostTableMatchesCommunicationModel:
    @settings(max_examples=60, deadline=None)
    @given(tensors=tensor_chains(), data=st.data())
    def test_batch_scorer_is_bit_exact_on_every_candidate(self, tensors, data):
        """score_codes == CommunicationModel.total_bytes, float for float."""
        comm = CommunicationModel()
        table = CostTable.from_tensors(tensors, comm)
        totals = table.score_codes(np.arange(table.num_assignments))
        for bits in range(table.num_assignments):
            assignment = LayerAssignment.from_codes(bits, len(tensors))
            assert totals[bits] == comm.total_bytes(tensors, assignment)

    @settings(max_examples=60, deadline=None)
    @given(tensors=tensor_chains())
    def test_array_dp_matches_reference_dp_exactly(self, tensors):
        """Same optimum bytes AND same argmin chain (dp-tie rule included)."""
        partitioner = TwoWayPartitioner()
        vectorized = partitioner.partition_tensors(tensors)
        reference = partitioner.partition_tensors_reference(tensors)
        assert vectorized.communication_bytes == reference.communication_bytes
        assert vectorized.assignment.choices == reference.assignment.choices

    @settings(max_examples=40, deadline=None)
    @given(tensors=tensor_chains(max_layers=7))
    def test_vectorized_brute_force_matches_reference_brute_force(self, tensors):
        vectorized = exhaustive_two_way(tensors)
        reference = exhaustive_two_way_reference(tensors)
        assert vectorized.communication_bytes == reference.communication_bytes
        assert vectorized.assignment.choices == reference.assignment.choices

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_real_models_with_scales_are_bit_exact(self, data):
        """Compiled tables over real layer shapes, batch sizes and scales."""
        model = data.draw(small_models(), label="model")
        batch = data.draw(batch_sizes, label="batch")
        scales = data.draw(tensor_scales(len(model)), label="scales")
        tensors = model_tensors(model, batch, scales)
        partitioner = TwoWayPartitioner()
        vectorized = partitioner.partition_tensors(tensors)
        reference = partitioner.partition_tensors_reference(tensors)
        assert vectorized.communication_bytes == reference.communication_bytes
        assert vectorized.assignment.choices == reference.assignment.choices
        brute = exhaustive_two_way(tensors)
        brute_reference = exhaustive_two_way_reference(tensors)
        assert brute.communication_bytes == brute_reference.communication_bytes
        assert brute.assignment.choices == brute_reference.assignment.choices


PIPELINE_SPACE = StrategySpace.parse("dp,mp,pp")


class TestBaseThreeSpaceMatchesObjectPath:
    """The K-way generalization must stay bit-exact beyond the binary space."""

    @settings(max_examples=40, deadline=None)
    @given(tensors=tensor_chains(max_layers=6), data=st.data())
    def test_base_three_batch_scorer_is_bit_exact(self, tensors, data):
        comm = CommunicationModel()
        table = CostTable.from_tensors(tensors, comm, PIPELINE_SPACE)
        totals = table.score_codes(np.arange(table.num_assignments))
        for codes in range(table.num_assignments):
            assignment = LayerAssignment.from_codes(codes, len(tensors), PIPELINE_SPACE)
            assert totals[codes] == comm.total_bytes(tensors, assignment)

    @settings(max_examples=40, deadline=None)
    @given(tensors=tensor_chains())
    def test_base_three_array_dp_matches_reference(self, tensors):
        partitioner = TwoWayPartitioner(strategies=PIPELINE_SPACE)
        vectorized = partitioner.partition_tensors(tensors)
        reference = partitioner.partition_tensors_reference(tensors)
        assert vectorized.communication_bytes == reference.communication_bytes
        assert vectorized.assignment.choices == reference.assignment.choices

    @settings(max_examples=25, deadline=None)
    @given(tensors=tensor_chains(max_layers=5))
    def test_base_three_brute_force_matches_reference(self, tensors):
        vectorized = exhaustive_two_way(tensors, strategies=PIPELINE_SPACE)
        reference = exhaustive_two_way_reference(tensors, strategies=PIPELINE_SPACE)
        assert vectorized.communication_bytes == reference.communication_bytes
        assert vectorized.assignment.choices == reference.assignment.choices

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_base_three_hierarchical_evaluation_is_bit_exact(self, data):
        model = data.draw(small_models(), label="model")
        batch = data.draw(batch_sizes, label="batch")
        num_levels = data.draw(st.integers(min_value=1, max_value=3), label="levels")
        mode = data.draw(st.sampled_from(list(ScalingMode)), label="mode")
        partitioner = HierarchicalPartitioner(
            num_levels=num_levels, scaling_mode=mode, strategies=PIPELINE_SPACE
        )
        table = partitioner.compile_table(model, batch)
        assignment = HierarchicalAssignment.of(
            [
                [
                    data.draw(st.integers(min_value=0, max_value=2), label="code")
                    for _ in range(len(model))
                ]
                for _ in range(num_levels)
            ]
        )
        reference = partitioner.evaluate_reference(model, assignment, batch)
        assert table.total_bytes(assignment) == reference.total_communication_bytes
        evaluated = partitioner.evaluate(model, assignment, batch, table=table)
        assert (
            evaluated.total_communication_bytes == reference.total_communication_bytes
        )
        for fast, slow in zip(evaluated.levels, reference.levels):
            assert fast.communication_bytes == slow.communication_bytes

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_base_three_hierarchical_batch_scoring_is_bit_exact(self, data):
        model = data.draw(small_models(max_layers=2), label="model")
        batch = data.draw(batch_sizes, label="batch")
        num_levels = data.draw(st.integers(min_value=1, max_value=2), label="levels")
        mode = data.draw(st.sampled_from(list(ScalingMode)), label="mode")
        partitioner = HierarchicalPartitioner(
            num_levels=num_levels, scaling_mode=mode, strategies=PIPELINE_SPACE
        )
        table = partitioner.compile_table(model, batch)
        totals = table.score_codes(np.arange(table.num_assignments))
        for codes in range(table.num_assignments):
            assignment = table.codes_to_assignment(codes)
            reference = partitioner.evaluate_reference(model, assignment, batch)
            assert totals[codes] == reference.total_communication_bytes


class TestDagTablesMatchObjectOracle:
    """Edge-indexed tables over random DAGs versus the object-based oracle."""

    @settings(max_examples=50, deadline=None)
    @given(tensors=tensor_chains(min_layers=2, max_layers=6), data=st.data())
    def test_dag_batch_scorer_is_bit_exact(self, tensors, data):
        """score_codes over random edge lists == generalized total_bytes."""
        edges = data.draw(dag_edges(len(tensors)), label="edges")
        comm = CommunicationModel()
        table = CostTable.from_tensors(tensors, comm, edges=edges)
        totals = table.score_codes(np.arange(table.num_assignments))
        for codes in range(table.num_assignments):
            assignment = LayerAssignment.from_codes(codes, len(tensors))
            assert totals[codes] == comm.total_bytes(tensors, assignment, edges)

    @settings(max_examples=50, deadline=None)
    @given(tensors=tensor_chains(min_layers=2, max_layers=6), data=st.data())
    def test_dag_dp_matches_brute_force_minimum(self, tensors, data):
        """The cut-vertex DP finds the exact brute-force optimum, bit for bit.

        Only the DAG program shares the batched scorer's float
        association; a drawn edge list that happens to be the chain keeps
        the historical Algorithm 1 DP, whose oracle is the scalar
        reference DP (the two accumulate in different orders and may
        differ from the enumeration total by an ULP).
        """
        edges = data.draw(dag_edges(len(tensors)), label="edges")
        table = CostTable.from_tensors(tensors, edges=edges)
        searched = table.dp_partition()
        if table.is_chain:
            reference = TwoWayPartitioner().partition_tensors_reference(tensors)
            assert searched.communication_bytes == reference.communication_bytes
            assert searched.assignment.choices == reference.assignment.choices
        else:
            _, brute_total = table.argmin_assignment()
            assert searched.communication_bytes == brute_total
            # The reported total is the exact score of the returned
            # assignment.
            assert (
                table.total_bytes(searched.assignment)
                == searched.communication_bytes
            )

    @settings(max_examples=25, deadline=None)
    @given(tensors=tensor_chains(min_layers=2, max_layers=5), data=st.data())
    def test_dag_base_three_dp_and_scorer_match_oracle(self, tensors, data):
        edges = data.draw(dag_edges(len(tensors)), label="edges")
        comm = CommunicationModel()
        table = CostTable.from_tensors(tensors, comm, PIPELINE_SPACE, edges=edges)
        totals = table.score_codes(np.arange(table.num_assignments))
        for codes in range(table.num_assignments):
            assignment = LayerAssignment.from_codes(codes, len(tensors), PIPELINE_SPACE)
            assert totals[codes] == comm.total_bytes(tensors, assignment, edges)
        searched = table.dp_partition()
        if table.is_chain:
            reference = TwoWayPartitioner(
                strategies=PIPELINE_SPACE
            ).partition_tensors_reference(tensors)
            assert searched.communication_bytes == reference.communication_bytes
        else:
            assert searched.communication_bytes == float(np.min(totals))

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_dag_model_tables_match_oracle(self, data):
        """Compiled tables of real branching models are bit-exact end to end."""
        model = data.draw(small_dag_models(), label="model")
        batch = data.draw(batch_sizes, label="batch")
        tensors = model_tensors(model, batch)
        comm = CommunicationModel()
        table = CostTable.compile(model, batch, communication_model=comm)
        assert table.edges == model.edges
        totals = table.score_codes(np.arange(table.num_assignments))
        for codes in range(table.num_assignments):
            assignment = LayerAssignment.from_codes(codes, len(model))
            assert totals[codes] == comm.total_bytes(tensors, assignment, model.edges)
        searched = table.dp_partition()
        if model.is_chain:
            reference = TwoWayPartitioner().partition_tensors_reference(tensors)
            assert searched.communication_bytes == reference.communication_bytes
        else:
            assert searched.communication_bytes == float(np.min(totals))
            # The lazy breakdown of the winner reproduces the exact total.
            breakdown_total = 0.0
            for record in searched.breakdown:
                breakdown_total += record.total_bytes
            assert breakdown_total == searched.communication_bytes

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_dag_hierarchical_evaluation_is_bit_exact(self, data):
        model = data.draw(small_dag_models(max_layers=4), label="model")
        batch = data.draw(batch_sizes, label="batch")
        num_levels = data.draw(st.integers(min_value=1, max_value=3), label="levels")
        mode = data.draw(st.sampled_from(list(ScalingMode)), label="mode")
        partitioner = HierarchicalPartitioner(num_levels=num_levels, scaling_mode=mode)
        table = partitioner.compile_table(model, batch)
        assignment = HierarchicalAssignment.of(
            [
                [
                    data.draw(st.integers(min_value=0, max_value=1), label="bit")
                    for _ in range(len(model))
                ]
                for _ in range(num_levels)
            ]
        )
        reference = partitioner.evaluate_reference(model, assignment, batch)
        assert table.total_bytes(assignment) == reference.total_communication_bytes
        evaluated = partitioner.evaluate(model, assignment, batch, table=table)
        assert (
            evaluated.total_communication_bytes == reference.total_communication_bytes
        )
        for fast, slow in zip(evaluated.levels, reference.levels):
            assert fast.communication_bytes == slow.communication_bytes
            assert [record.total_bytes for record in fast.breakdown] == [
                record.total_bytes for record in slow.breakdown
            ]

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_dag_hierarchical_batch_scoring_is_bit_exact(self, data):
        model = data.draw(small_dag_models(max_layers=3), label="model")
        batch = data.draw(batch_sizes, label="batch")
        num_levels = data.draw(st.integers(min_value=1, max_value=2), label="levels")
        mode = data.draw(st.sampled_from(list(ScalingMode)), label="mode")
        partitioner = HierarchicalPartitioner(num_levels=num_levels, scaling_mode=mode)
        table = partitioner.compile_table(model, batch)
        totals = table.score_codes(np.arange(table.num_assignments))
        for codes in range(table.num_assignments):
            assignment = table.codes_to_assignment(codes)
            reference = partitioner.evaluate_reference(model, assignment, batch)
            assert totals[codes] == reference.total_communication_bytes


class TestHierarchicalTableMatchesObjectPath:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_random_assignments_score_bit_exactly(self, data):
        model = data.draw(small_models(), label="model")
        batch = data.draw(batch_sizes, label="batch")
        num_levels = data.draw(st.integers(min_value=1, max_value=3), label="levels")
        mode = data.draw(st.sampled_from(list(ScalingMode)), label="mode")
        partitioner = HierarchicalPartitioner(num_levels=num_levels, scaling_mode=mode)
        table = partitioner.compile_table(model, batch)
        assignment = HierarchicalAssignment.of(
            [
                [
                    data.draw(st.integers(min_value=0, max_value=1), label="bit")
                    for _ in range(len(model))
                ]
                for _ in range(num_levels)
            ]
        )
        reference = partitioner.evaluate_reference(model, assignment, batch)
        assert table.total_bytes(assignment) == reference.total_communication_bytes
        evaluated = partitioner.evaluate(model, assignment, batch, table=table)
        assert (
            evaluated.total_communication_bytes == reference.total_communication_bytes
        )
        for fast, slow in zip(evaluated.levels, reference.levels):
            assert fast.communication_bytes == slow.communication_bytes
            assert [record.total_bytes for record in fast.breakdown] == [
                record.total_bytes for record in slow.breakdown
            ]

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_search_over_table_matches_object_descent(self, data):
        """Algorithm 2 driven by the table equals the classic level-by-level
        descent built from the reference DP and ``descend_scales``."""
        from repro.core.tensors import descend_scales, initial_scales

        model = data.draw(small_models(), label="model")
        batch = data.draw(batch_sizes, label="batch")
        num_levels = data.draw(st.integers(min_value=1, max_value=3), label="levels")
        mode = data.draw(st.sampled_from(list(ScalingMode)), label="mode")
        partitioner = HierarchicalPartitioner(num_levels=num_levels, scaling_mode=mode)
        searched = partitioner.partition(model, batch)

        two_way = TwoWayPartitioner(partitioner.communication_model)
        scales = initial_scales(len(model))
        for level in range(num_levels):
            tensors = model_tensors(model, batch, scales)
            reference = two_way.partition_tensors_reference(tensors)
            level_result = searched.levels[level]
            assert level_result.assignment.choices == reference.assignment.choices
            assert level_result.communication_bytes == reference.communication_bytes
            scales = descend_scales(scales, reference.assignment, mode)

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_hierarchical_batch_scoring_is_bit_exact(self, data):
        """Every candidate of a small full space scores identically."""
        model = data.draw(small_models(max_layers=3), label="model")
        batch = data.draw(batch_sizes, label="batch")
        num_levels = data.draw(st.integers(min_value=1, max_value=2), label="levels")
        mode = data.draw(st.sampled_from(list(ScalingMode)), label="mode")
        partitioner = HierarchicalPartitioner(num_levels=num_levels, scaling_mode=mode)
        table = partitioner.compile_table(model, batch)
        totals = table.score_codes(np.arange(1 << table.total_bits))
        for bits in range(1 << table.total_bits):
            assignment = table.codes_to_assignment(bits)
            reference = partitioner.evaluate_reference(model, assignment, batch)
            assert totals[bits] == reference.total_communication_bytes
