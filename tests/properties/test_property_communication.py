"""Property-based tests for the communication model invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.communication import CommunicationModel
from repro.core.parallelism import DATA, MODEL, LayerAssignment, Parallelism
from repro.core.tensors import LayerTensors, TensorScale

parallelisms = st.sampled_from([DATA, MODEL])
amounts = st.floats(min_value=1.0, max_value=1e9, allow_nan=False, allow_infinity=False)


@st.composite
def layer_tensor_records(draw, index=0):
    return LayerTensors(
        layer_index=index,
        layer_name=f"layer{index}",
        is_conv=draw(st.booleans()),
        feature_in=draw(amounts),
        feature_out=draw(amounts),
        weight=draw(amounts),
        macs=draw(amounts),
    )


@st.composite
def tensor_chains(draw, min_layers=1, max_layers=8):
    count = draw(st.integers(min_value=min_layers, max_value=max_layers))
    return [draw(layer_tensor_records(index)) for index in range(count)]


class TestTableInvariants:
    @given(layer_tensor_records(), parallelisms)
    def test_intra_layer_amount_non_negative(self, tensors, parallelism):
        assert CommunicationModel.intra_layer_elements(tensors, parallelism) >= 0

    @given(layer_tensor_records())
    def test_intra_layer_amounts_match_table1(self, tensors):
        assert CommunicationModel.intra_layer_elements(tensors, DATA) == tensors.gradient
        assert CommunicationModel.intra_layer_elements(tensors, MODEL) == tensors.feature_out

    @given(layer_tensor_records(), parallelisms, parallelisms)
    def test_inter_layer_amount_non_negative_and_bounded(self, boundary, previous, current):
        amount = CommunicationModel.inter_layer_elements(previous, current, boundary)
        assert amount >= 0
        # No transition moves more than half of each boundary tensor.
        assert amount <= 0.5 * (boundary.feature_out + boundary.error_out) + 1e-9

    @given(layer_tensor_records(), parallelisms, parallelisms)
    def test_forward_backward_split_is_exact(self, boundary, previous, current):
        total = CommunicationModel.inter_layer_elements(previous, current, boundary)
        forward = CommunicationModel.inter_layer_forward_elements(previous, current, boundary)
        backward = CommunicationModel.inter_layer_backward_elements(previous, current, boundary)
        assert abs(forward + backward - total) < 1e-6

    @given(layer_tensor_records())
    def test_dp_dp_transition_is_always_free(self, boundary):
        assert CommunicationModel.inter_layer_elements(DATA, DATA, boundary) == 0.0

    @given(layer_tensor_records(), parallelisms)
    def test_transitions_out_of_mp_cost_the_same(self, boundary, current):
        """mp->dp and mp->mp both move half the error tensor (Table 2)."""
        assert CommunicationModel.inter_layer_elements(
            MODEL, DATA, boundary
        ) == CommunicationModel.inter_layer_elements(MODEL, MODEL, boundary)


class TestModelLevelInvariants:
    @settings(max_examples=60)
    @given(tensor_chains(), st.data())
    def test_total_equals_breakdown_sum(self, tensors, data):
        model = CommunicationModel()
        assignment = LayerAssignment(
            tuple(
                data.draw(parallelisms, label=f"choice{i}") for i in range(len(tensors))
            )
        )
        breakdown = model.layer_breakdown(tensors, assignment)
        assert abs(
            model.total_bytes(tensors, assignment)
            - sum(record.total_bytes for record in breakdown)
        ) < 1e-6

    @settings(max_examples=60)
    @given(tensor_chains())
    def test_all_dp_total_is_scaled_gradient_sum(self, tensors):
        model = CommunicationModel()
        assignment = LayerAssignment.uniform(DATA, len(tensors))
        expected = sum(t.gradient for t in tensors) * model.bytes_per_element * model.pair_factor
        assert abs(model.total_bytes(tensors, assignment) - expected) < 1e-3

    @settings(max_examples=60)
    @given(tensor_chains(), st.integers(min_value=1, max_value=8))
    def test_bytes_scale_linearly_with_pair_factor(self, tensors, factor):
        base = CommunicationModel(pair_factor=1)
        scaled = CommunicationModel(pair_factor=factor)
        assignment = LayerAssignment.uniform(MODEL, len(tensors))
        assert abs(
            scaled.total_bytes(tensors, assignment)
            - factor * base.total_bytes(tensors, assignment)
        ) < 1e-3


class TestScaleProperties:
    @given(
        st.sampled_from([DATA, MODEL]),
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_descend_never_increases_fractions(self, choice, batch, weight):
        from repro.core.tensors import ScalingMode

        scale = TensorScale(batch, weight)
        child = scale.descend(choice, ScalingMode.PARALLELISM_AWARE)
        assert child.batch_fraction <= scale.batch_fraction
        assert child.weight_fraction <= scale.weight_fraction
        # Exactly one fraction halves.
        halved = (
            child.batch_fraction == scale.batch_fraction / 2,
            child.weight_fraction == scale.weight_fraction / 2,
        )
        assert sum(halved) == 1
