"""Property-based tests for the partition search algorithms.

The central property is *optimality*: on any randomly generated tensor
chain small enough to brute-force, the dynamic program of Algorithm 1 must
return exactly the cost of the best assignment found by exhaustive
enumeration, and never return a cost above any specific assignment.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exhaustive import all_layer_assignments, exhaustive_two_way
from repro.core.hierarchical import HierarchicalPartitioner
from repro.core.parallelism import DATA, MODEL, LayerAssignment
from repro.core.partitioner import TwoWayPartitioner
from repro.core.tensors import LayerTensors

amounts = st.floats(min_value=1.0, max_value=1e8, allow_nan=False, allow_infinity=False)


@st.composite
def tensor_chains(draw, min_layers=1, max_layers=7):
    count = draw(st.integers(min_value=min_layers, max_value=max_layers))
    chain = []
    for index in range(count):
        chain.append(
            LayerTensors(
                layer_index=index,
                layer_name=f"layer{index}",
                is_conv=draw(st.booleans()),
                feature_in=draw(amounts),
                feature_out=draw(amounts),
                weight=draw(amounts),
                macs=draw(amounts),
            )
        )
    return chain


class TestDynamicProgramOptimality:
    @settings(max_examples=80, deadline=None)
    @given(tensor_chains())
    def test_matches_exhaustive_search(self, tensors):
        partitioner = TwoWayPartitioner()
        searched = partitioner.partition_tensors(tensors)
        brute = exhaustive_two_way(tensors)
        assert searched.communication_bytes <= brute.communication_bytes + 1e-6
        assert abs(searched.communication_bytes - brute.communication_bytes) < 1e-6

    @settings(max_examples=60, deadline=None)
    @given(tensor_chains(max_layers=6))
    def test_never_worse_than_any_assignment(self, tensors):
        partitioner = TwoWayPartitioner()
        best = partitioner.partition_tensors(tensors).communication_bytes
        for assignment in all_layer_assignments(len(tensors)):
            cost = partitioner.evaluate(tensors, assignment).communication_bytes
            assert best <= cost + 1e-6

    @settings(max_examples=60, deadline=None)
    @given(tensor_chains())
    def test_reported_cost_matches_reevaluation(self, tensors):
        """The DP's accumulated cost equals the cost of re-evaluating its own
        assignment from scratch (no double counting, no missing terms)."""
        partitioner = TwoWayPartitioner()
        searched = partitioner.partition_tensors(tensors)
        recomputed = partitioner.evaluate(tensors, searched.assignment)
        assert abs(searched.communication_bytes - recomputed.communication_bytes) < 1e-6

    @settings(max_examples=40, deadline=None)
    @given(tensor_chains())
    def test_cost_non_negative_and_finite(self, tensors):
        result = TwoWayPartitioner().partition_tensors(tensors)
        assert 0 <= result.communication_bytes < float("inf")


class TestSingleLayerDecision:
    @given(layer=st.integers(min_value=0, max_value=0), data=st.data())
    def test_single_layer_picks_smaller_intra_tensor(self, layer, data):
        weight = data.draw(amounts, label="weight")
        feature_out = data.draw(amounts, label="feature_out")
        tensors = [
            LayerTensors(
                layer_index=0,
                layer_name="only",
                is_conv=True,
                feature_in=1.0,
                feature_out=feature_out,
                weight=weight,
                macs=1.0,
            )
        ]
        choice = TwoWayPartitioner().partition_tensors(tensors).assignment[0]
        if weight < feature_out:
            assert choice is DATA
        elif feature_out < weight:
            assert choice is MODEL


class TestHierarchicalProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_search_never_worse_than_uniform_baselines(self, data):
        """Algorithm 2's result must beat (or tie) both default strategies on
        random small models, at every batch size."""
        from repro.nn.layers import ConvLayer, FCLayer
        from repro.nn.model import build_model

        num_fc = data.draw(st.integers(min_value=1, max_value=3), label="num_fc")
        specs = [
            ConvLayer(name="conv0", out_channels=data.draw(
                st.integers(min_value=1, max_value=32), label="channels"), kernel_size=3, padding=1)
        ]
        specs += [
            FCLayer(
                name=f"fc{i}",
                out_features=data.draw(st.integers(min_value=1, max_value=512), label=f"fc{i}"),
            )
            for i in range(num_fc)
        ]
        model = build_model("random", (16, 16, 3), specs)
        batch = data.draw(st.sampled_from([8, 64, 512]), label="batch")
        partitioner = HierarchicalPartitioner(num_levels=3)
        searched = partitioner.partition(model, batch).total_communication_bytes
        for uniform in (DATA, MODEL):
            baseline = partitioner.evaluate_uniform(model, uniform, batch)
            assert searched <= baseline.total_communication_bytes + 1e-6

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=5))
    def test_total_communication_grows_with_levels_for_fixed_model(self, num_levels):
        """Adding hierarchy levels (more accelerators) never reduces the total
        traffic of the all-dp baseline: every level adds gradient exchanges."""
        from repro.nn.model_zoo import lenet_c

        model = lenet_c()
        totals = []
        for levels in range(1, num_levels + 1):
            partitioner = HierarchicalPartitioner(num_levels=levels)
            totals.append(
                partitioner.evaluate_uniform(model, DATA, 256).total_communication_bytes
            )
        assert totals == sorted(totals)
