"""Property-based tests for tensor placement and communication traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchical import HierarchicalPartitioner
from repro.core.parallelism import HierarchicalAssignment, LayerAssignment, Parallelism
from repro.core.placement import TensorPlacement
from repro.nn.layers import ConvLayer, FCLayer
from repro.nn.model import build_model
from repro.sim.trace import TraceBuilder

parallelisms = st.sampled_from([Parallelism.DATA, Parallelism.MODEL])


@st.composite
def small_models(draw):
    num_fc = draw(st.integers(min_value=1, max_value=3))
    specs = [
        ConvLayer(
            name="conv0",
            out_channels=draw(st.integers(min_value=2, max_value=16)),
            kernel_size=3,
            padding=1,
        )
    ]
    specs += [
        FCLayer(
            name=f"fc{i}",
            out_features=draw(st.integers(min_value=2, max_value=64)),
        )
        for i in range(num_fc)
    ]
    return build_model("prop", (8, 8, 2), specs)


@st.composite
def assignments_for(draw, model, max_levels=4):
    num_levels = draw(st.integers(min_value=1, max_value=max_levels))
    levels = []
    for _ in range(num_levels):
        levels.append(
            LayerAssignment(
                tuple(draw(parallelisms) for _ in range(len(model)))
            )
        )
    return HierarchicalAssignment(tuple(levels))


class TestPlacementProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_every_shard_holds_an_equal_share(self, data):
        model = data.draw(small_models())
        assignment = data.draw(assignments_for(model))
        placement = TensorPlacement(model, assignment)
        expected = 1.0 / assignment.num_accelerators
        for layer in model:
            for shard in placement.layer_shards(layer.index):
                share = shard.batch_interval.length * shard.weight_interval.length
                assert abs(share - expected) < 1e-12

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_replication_factors_follow_choice_counts(self, data):
        """Kernel replication is 2^(#dp levels) and output replication 2^(#mp levels)."""
        model = data.draw(small_models())
        assignment = data.draw(assignments_for(model))
        placement = TensorPlacement(model, assignment)
        for layer in model:
            choices = assignment.layer_choices(layer.index)
            dp_levels = sum(choice is Parallelism.DATA for choice in choices)
            mp_levels = len(choices) - dp_levels
            assert abs(
                placement.weight_replication_factor(layer.index) - 2**dp_levels
            ) < 1e-9
            assert abs(
                placement.feature_out_replication_factor(layer.index) - 2**mp_levels
            ) < 1e-9

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_validation_always_passes_for_generated_assignments(self, data):
        model = data.draw(small_models())
        assignment = data.draw(assignments_for(model))
        TensorPlacement(model, assignment).validate()

    @settings(max_examples=40, deadline=None)
    @given(st.data(), st.sampled_from([16, 64, 256]))
    def test_footprints_are_balanced_and_positive(self, data, batch):
        model = data.draw(small_models())
        assignment = data.draw(assignments_for(model))
        placement = TensorPlacement(model, assignment)
        footprints = placement.memory_footprint(batch)
        totals = [footprint.total_bytes for footprint in footprints]
        assert min(totals) > 0
        assert abs(max(totals) - min(totals)) < 1e-6 * max(totals)


class TestTraceProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.data(), st.sampled_from([16, 128]))
    def test_trace_total_matches_partitioner_objective(self, data, batch):
        model = data.draw(small_models())
        assignment = data.draw(assignments_for(model, max_levels=3))
        partitioner = HierarchicalPartitioner(num_levels=assignment.num_levels)
        trace = TraceBuilder().build(model, assignment, batch)
        expected = partitioner.evaluate(model, assignment, batch)
        assert abs(
            trace.total_bytes - expected.total_communication_bytes
        ) <= 1e-6 * max(1.0, expected.total_communication_bytes)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_transfers_stay_within_pair_boundaries(self, data):
        """A transfer at level h connects accelerators whose index prefixes agree."""
        model = data.draw(small_models())
        assignment = data.draw(assignments_for(model, max_levels=3))
        trace = TraceBuilder().build(model, assignment, 32)
        num_levels = assignment.num_levels
        for transfer in trace.transfers:
            # The two endpoints share the top `transfer.level` index bits and
            # differ in the next one (they sit on opposite sides of the pair).
            shift = num_levels - transfer.level
            assert transfer.source >> shift == transfer.destination >> shift
            assert (transfer.source >> (shift - 1)) != (transfer.destination >> (shift - 1))

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_traffic_is_direction_symmetric(self, data):
        model = data.draw(small_models())
        assignment = data.draw(assignments_for(model, max_levels=3))
        trace = TraceBuilder().build(model, assignment, 32)
        directed: dict = {}
        for transfer in trace.transfers:
            key = (transfer.source, transfer.destination)
            directed[key] = directed.get(key, 0.0) + transfer.num_bytes
        for (source, destination), volume in directed.items():
            assert abs(directed[(destination, source)] - volume) < 1e-9
