"""Property-based tests for the numerically-validated partitioned execution.

For randomly generated small fully-connected networks and random
dp/mp/pp assignments, the partitioned two-group step must reproduce the
monolithic step exactly and must move exactly the traffic the
communication model predicts -- including the stage-boundary transfers of
pipeline layers, whose Table-2 entries are thereby pinned to the rectangle
overlap calculus rather than transcribed numbers.  (Fully-connected stacks
keep each hypothesis example cheap; the convolutional path is covered by
the deterministic tests.)
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.communication import CommunicationModel
from repro.core.execution import TwoGroupExecutor
from repro.core.parallelism import LayerAssignment, Parallelism
from repro.core.tensors import model_tensors
from repro.nn.layers import Activation, FCLayer
from repro.nn.model import build_model
from repro.nn.reference import ReferenceNetwork

parallelisms = st.sampled_from(
    [Parallelism.DATA, Parallelism.MODEL, Parallelism.PIPELINE]
)


@st.composite
def fc_networks(draw):
    num_layers = draw(st.integers(min_value=1, max_value=4))
    input_features = draw(st.sampled_from([4, 6, 8]))
    specs = []
    for index in range(num_layers):
        activation = Activation.RELU if index < num_layers - 1 else Activation.NONE
        specs.append(
            FCLayer(
                name=f"fc{index}",
                out_features=draw(st.sampled_from([2, 4, 6, 10])),
                activation=activation,
            )
        )
    model = build_model("prop-fc", (1, 1, input_features), specs)
    seed = draw(st.integers(min_value=0, max_value=1000))
    return ReferenceNetwork(model, seed=seed)


@st.composite
def cases(draw):
    network = draw(fc_networks())
    assignment = LayerAssignment(
        tuple(draw(parallelisms) for _ in range(len(network.model)))
    )
    batch = draw(st.sampled_from([2, 4, 8]))
    return network, assignment, batch


class TestPartitionedExecutionProperties:
    @settings(max_examples=50, deadline=None)
    @given(cases())
    def test_partitioned_step_matches_monolithic_step(self, case):
        network, assignment, batch = case
        x = network.random_batch(batch, seed=1)
        rng = np.random.default_rng(2)
        grad_output = rng.standard_normal(
            (batch, network.model[-1].output_shape.elements)
        )
        reference = network.training_step(x, grad_output)
        result = TwoGroupExecutor(network, assignment).run_step(x, grad_output)

        np.testing.assert_allclose(result.output, reference[-1].output, atol=1e-9)
        np.testing.assert_allclose(result.input_error, reference[0].grad_input, atol=1e-9)
        for index, state in enumerate(reference):
            np.testing.assert_allclose(
                result.gradients[index], state.grad_weight, atol=1e-9
            )

    @settings(max_examples=50, deadline=None)
    @given(cases())
    def test_measured_traffic_equals_model_prediction(self, case):
        network, assignment, batch = case
        x = network.random_batch(batch, seed=3)
        rng = np.random.default_rng(4)
        grad_output = rng.standard_normal(
            (batch, network.model[-1].output_shape.elements)
        )
        result = TwoGroupExecutor(network, assignment).run_step(x, grad_output)

        comm = CommunicationModel()
        tensors = model_tensors(network.model, batch)
        predicted = comm.total_bytes(tensors, assignment)
        measured = result.total_elements() * comm.bytes_per_element
        assert abs(measured - predicted) <= 1e-6 * max(1.0, predicted)

    @settings(max_examples=30, deadline=None)
    @given(fc_networks(), st.sampled_from([2, 4, 8]))
    def test_all_dp_moves_exactly_the_gradients(self, network, batch):
        assignment = LayerAssignment.uniform(Parallelism.DATA, len(network.model))
        x = network.random_batch(batch, seed=5)
        grad_output = np.ones((batch, network.model[-1].output_shape.elements))
        result = TwoGroupExecutor(network, assignment).run_step(x, grad_output)
        assert result.total_elements() == 2 * network.model.total_weights
