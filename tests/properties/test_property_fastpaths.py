"""Property-based bit-exactness tests for the search fast paths.

PR 7's performance work adds three accelerations to the cost engine --
block-repetition memoization in the chain DP, dominance pruning in the
batched scanners, and an optional compiled (numba) kernel backend -- all
promising *bit-exact* agreement with the plain NumPy path (which the
existing property suites pin against the object oracle, making the
equivalence three deep).  These tests drive the fast paths over random
repeated-block chains at transformer-style depth and assert exact float
equality: same optimum bytes, same argmin assignment, identical candidate
totals.

When numba is absent (the default local environment) ``backend="compiled"``
silently runs the NumPy path, so the backend tests hold trivially here and
bind for real in the numba CI leg.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np

from repro.core.costs import CostTable, HierarchicalCostTable, WarmStartDP
from repro.core.exhaustive import (
    enumerate_restricted_communication,
    exhaustive_two_way,
    exhaustive_two_way_reference,
)
from repro.core.parallelism import HierarchicalAssignment, Parallelism
from repro.core.tensors import LayerTensors, model_tensors
from repro.nn.model_zoo import gpt_s, lenet_c

# Integer byte-like amounts keep every cost a small exact float, the regime
# where the memoizer's exactness certificate admits the translated-frontier
# jump; the bit-exactness property itself holds for any floats (the jump
# simply declines when exactness cannot be certified).
int_amounts = st.integers(min_value=1, max_value=1 << 24)


def _layer(index: int, feature_in: int, feature_out: int, weight: int) -> LayerTensors:
    return LayerTensors(
        layer_index=index,
        layer_name=f"layer{index}",
        is_conv=False,
        feature_in=float(feature_in),
        feature_out=float(feature_out),
        weight=float(weight),
        macs=float(weight),
    )


@st.composite
def repeated_block_chains(draw, min_repeats=3, max_repeats=40):
    """A stem, ``repeats`` copies of one 1-4 layer block, and a head.

    The structure of a parameterized transformer chain: distinct layers at
    both ends, an exactly-periodic interior.  Depths reach past the
    memoizer's minimum (32 layers) so the periodic-region detector and the
    block-stepping path both run under the property.
    """
    block_len = draw(st.integers(min_value=1, max_value=4), label="block_len")
    repeats = draw(
        st.integers(min_value=min_repeats, max_value=max_repeats), label="repeats"
    )
    block = [
        (draw(int_amounts), draw(int_amounts), draw(int_amounts))
        for _ in range(block_len)
    ]
    stem = (draw(int_amounts), draw(int_amounts), draw(int_amounts))
    head = (draw(int_amounts), draw(int_amounts), draw(int_amounts))
    rows = [stem] + block * repeats + [head]
    return [
        _layer(index, fin, fout, weight)
        for index, (fin, fout, weight) in enumerate(rows)
    ]


@st.composite
def short_chains(draw, max_layers=7):
    count = draw(st.integers(min_value=1, max_value=max_layers))
    return [
        _layer(index, draw(int_amounts), draw(int_amounts), draw(int_amounts))
        for index in range(count)
    ]


class TestMemoizedChainDP:
    @settings(max_examples=50, deadline=None)
    @given(tensors=repeated_block_chains())
    def test_memoized_dp_is_bit_exact_with_cold_dp(self, tensors):
        table = CostTable.from_tensors(tensors)
        memoized = table.dp_partition(memoize=True)
        cold = table.dp_partition(memoize=False)
        assert memoized.communication_bytes == cold.communication_bytes
        assert memoized.assignment.choices == cold.assignment.choices

    @settings(max_examples=25, deadline=None)
    @given(tensors=repeated_block_chains(min_repeats=10))
    def test_warmstart_memoized_solve_matches_cold(self, tensors):
        table = CostTable.from_tensors(tensors)
        warm = WarmStartDP().solve(table)
        cold = table.dp_partition(memoize=False)
        assert warm.communication_bytes == cold.communication_bytes
        assert warm.assignment.choices == cold.assignment.choices

    @settings(max_examples=15, deadline=None)
    @given(tensors=repeated_block_chains(min_repeats=12), data=st.data())
    def test_warmstart_suffix_mutation_reuse_at_depth(self, tensors, data):
        """Mutating a suffix layer re-solves only the suffix, bit-exactly."""
        solver = WarmStartDP()
        table = CostTable.from_tensors(tensors)
        solver.solve(table)
        # Mutate one layer in the back half; the prefix frontier is reused.
        # Bumping the weight guarantees the layer's cost column changes, so
        # the solve cannot short-circuit as a full cache hit.
        index = data.draw(
            st.integers(min_value=len(tensors) // 2, max_value=len(tensors) - 1),
            label="mutated_layer",
        )
        original = tensors[index]
        mutated = list(tensors)
        mutated[index] = _layer(
            index,
            int(original.feature_in),
            int(original.feature_out),
            int(original.weight) + 1,
        )
        mutated_table = CostTable.from_tensors(mutated)
        warm = solver.solve(mutated_table)
        cold = mutated_table.dp_partition(memoize=False)
        assert warm.communication_bytes == cold.communication_bytes
        assert warm.assignment.choices == cold.assignment.choices
        assert solver.stats()["reused_layers"] > 0

    def test_periodic_jump_fires_at_transformer_depth(self):
        """The translated-frontier jump actually engages (not just falls back).

        ``gpt_s(64)`` is a 258-layer chain of integer-valued tensor amounts,
        the regime where the exactness certificate certifies the jump; if a
        refactor silently degrades it to cold stepping, ``memoized_layers``
        stays zero and this test (not just a benchmark) catches it.
        """
        tensors = model_tensors(gpt_s(64), 256)
        cost_table = CostTable.from_tensors(tensors)
        solver = WarmStartDP()
        warm = solver.solve(cost_table)
        assert solver.memoized_layers > 0
        cold = cost_table.dp_partition(memoize=False)
        assert warm.communication_bytes == cold.communication_bytes
        assert warm.assignment.choices == cold.assignment.choices


class TestDominancePruning:
    @settings(max_examples=40, deadline=None)
    @given(tensors=short_chains())
    def test_pruned_argmin_matches_plain_scan(self, tensors):
        table = CostTable.from_tensors(tensors)
        plain = table.argmin_assignment()
        pruned = table.argmin_assignment(prune=True)
        assert pruned == plain

    @settings(max_examples=30, deadline=None)
    @given(tensors=short_chains())
    def test_pruned_argmin_with_dp_incumbent_matches(self, tensors):
        table = CostTable.from_tensors(tensors)
        plain = table.argmin_assignment()
        upper = table.dp_partition().communication_bytes
        pruned = table.argmin_assignment(prune=True, upper_bound=upper)
        assert pruned == plain

    @settings(max_examples=25, deadline=None)
    @given(tensors=short_chains(max_layers=6))
    def test_branch_and_bound_exhaustive_matches_reference(self, tensors):
        pruned = exhaustive_two_way(tensors, prune=True, chunk_size=8)
        reference = exhaustive_two_way_reference(tensors)
        assert pruned.communication_bytes == reference.communication_bytes
        assert pruned.assignment.choices == reference.assignment.choices


class TestChunkSizeByteIdentity:
    @settings(max_examples=30, deadline=None)
    @given(tensors=short_chains(), data=st.data())
    def test_tiny_chunks_score_byte_identically(self, tensors, data):
        table = CostTable.from_tensors(tensors)
        codes = np.arange(table.num_assignments, dtype=np.int64)
        baseline = table.score_codes(codes)
        chunk = data.draw(st.sampled_from([1, 2, 3, 7]), label="chunk_size")
        assert np.array_equal(table.score_codes(codes, chunk_size=chunk), baseline)

    def test_hierarchical_scorer_tiny_chunks_are_byte_identical(self):
        table = HierarchicalCostTable(lenet_c(), 64, 2)
        codes = np.arange(table.num_assignments, dtype=np.int64)
        baseline = table.score_codes(codes)
        for chunk in (1, 3, 16):
            assert np.array_equal(table.score_codes(codes, chunk_size=chunk), baseline)
        plain = table.argmin_assignment()
        assert table.argmin_assignment(chunk_size=1) == plain

    def test_restricted_sweep_tiny_chunks_are_byte_identical(self):
        model = lenet_c()
        base = HierarchicalAssignment.uniform(Parallelism.DATA, 2, len(model))
        free = [(0, 0), (1, 2), (0, 3)]
        baseline = enumerate_restricted_communication(model, 64, base, free)
        tiny = enumerate_restricted_communication(model, 64, base, free, chunk_size=2)
        assert np.array_equal(tiny, baseline)


class TestCompiledBackendEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        tensors=repeated_block_chains(max_repeats=12),
        backend=st.sampled_from(["compiled", "compiled-parallel"]),
    )
    def test_compiled_dp_matches_numpy_dp(self, tensors, backend):
        numpy_table = CostTable.from_tensors(tensors, backend="numpy")
        compiled_table = CostTable.from_tensors(tensors, backend=backend)
        a = numpy_table.dp_partition()
        b = compiled_table.dp_partition()
        assert a.communication_bytes == b.communication_bytes
        assert a.assignment.choices == b.assignment.choices
        # And with memoization off, the raw kernels against each other.
        a = numpy_table.dp_partition(memoize=False)
        b = compiled_table.dp_partition(memoize=False)
        assert a.communication_bytes == b.communication_bytes
        assert a.assignment.choices == b.assignment.choices

    @settings(max_examples=30, deadline=None)
    @given(
        tensors=short_chains(),
        backend=st.sampled_from(["compiled", "compiled-parallel"]),
    )
    def test_compiled_scorer_matches_numpy_scorer(self, tensors, backend):
        numpy_table = CostTable.from_tensors(tensors, backend="numpy")
        compiled_table = CostTable.from_tensors(tensors, backend=backend)
        codes = np.arange(numpy_table.num_assignments, dtype=np.int64)
        assert np.array_equal(
            compiled_table.score_codes(codes), numpy_table.score_codes(codes)
        )
