"""Property tests: the network engine vs the analytic engine.

The network simulator must *validate* against the closed form wherever the
closed form's assumptions hold: on the H tree every pair boundary gets the
dedicated binary-tree links the analytic ``effective_pair_bandwidth``
formula prices, so an assignment with no compute/comm overlap window
(all-mp: every exchange sits on the critical path) must produce the same
step time bit for bit, on every model of the zoo.  Where the engines are
allowed to differ, the difference must have one sign: every network-engine
scheduling change is a relaxation, so on contention-free H-tree routes the
network step never exceeds the analytic one.
"""

import pytest

from repro.accelerator.array import ArrayConfig
from repro.core.baselines import data_parallelism, model_parallelism
from repro.core.hierarchical import HierarchicalPartitioner
from repro.interconnect import HTreeTopology, TorusTopology
from repro.nn.model_zoo import all_models, gpt_r
from repro.sim.training import TrainingSimulator


def _engines(num_accelerators, topology_type=HTreeTopology):
    array = ArrayConfig(num_accelerators=num_accelerators)
    topology = topology_type(num_accelerators, array.link_bandwidth_bytes)
    return (
        TrainingSimulator(array, topology, sim_engine="analytic"),
        TrainingSimulator(array, topology, sim_engine="network"),
    )


def _zoo():
    return all_models() + [gpt_r(4)]


class TestUncongestedEquality:
    @pytest.mark.parametrize("model", _zoo(), ids=lambda model: model.name)
    def test_all_mp_htree_is_bit_identical(self, model):
        """All-mp has no overlap window and no contention: the engines must
        agree exactly -- same step time, same energy, same bytes."""
        analytic, network = _engines(16)
        assignment = model_parallelism(model, 4)
        expected = analytic.simulate(model, assignment, 256, "mp")
        actual = network.simulate(model, assignment, 256, "mp")
        assert actual.step_seconds == expected.step_seconds
        assert actual.energy_joules == expected.energy_joules
        assert actual.communication_bytes == expected.communication_bytes
        assert tuple(actual.level_communication_bytes) == tuple(
            expected.level_communication_bytes
        )

    def test_all_mp_two_node_torus_is_bit_identical(self, lenet_model):
        """With two accelerators the torus degenerates to one direct link,
        so even the mesh topology is contention-free and must agree."""
        analytic, network = _engines(2, TorusTopology)
        assignment = model_parallelism(lenet_model, 1)
        expected = analytic.simulate(lenet_model, assignment, 64, "mp")
        actual = network.simulate(lenet_model, assignment, 64, "mp")
        assert actual.step_seconds == expected.step_seconds

    @pytest.mark.parametrize("batch_size", [64, 256, 1024])
    def test_equality_holds_across_batch_sizes(self, lenet_model, batch_size):
        analytic, network = _engines(16)
        assignment = model_parallelism(lenet_model, 4)
        expected = analytic.simulate(lenet_model, assignment, batch_size, "mp")
        actual = network.simulate(lenet_model, assignment, batch_size, "mp")
        assert actual.step_seconds == expected.step_seconds


class TestRelaxationDirection:
    @pytest.mark.parametrize("model", _zoo(), ids=lambda model: model.name)
    def test_htree_network_step_never_exceeds_analytic(self, model):
        """Contention-free routes + pure relaxations: one-sided bound for
        every strategy, searched assignments included."""
        analytic, network = _engines(16)
        table = analytic.cost_table(model, 256)
        hypar = HierarchicalPartitioner(num_levels=4).partition(
            model, 256, table=table
        ).assignment
        for assignment in (
            data_parallelism(model, 4),
            model_parallelism(model, 4),
            hypar,
        ):
            slow = analytic.simulate(model, assignment, 256, cost_table=table)
            fast = network.simulate(model, assignment, 256, cost_table=table)
            assert fast.step_seconds <= slow.step_seconds

    @pytest.mark.parametrize("model", _zoo(), ids=lambda model: model.name)
    def test_accounting_is_engine_invariant(self, model):
        """Energy and traffic derive from the amounts, not the schedule:
        both engines must report identical joules and bytes everywhere --
        H tree or torus, congested or not."""
        analytic, network = _engines(16, TorusTopology)
        assignment = data_parallelism(model, 4)
        expected = analytic.simulate(model, assignment, 256, "dp")
        actual = network.simulate(model, assignment, 256, "dp")
        assert actual.energy_joules == expected.energy_joules
        assert actual.communication_bytes == expected.communication_bytes
