"""Golden-output tests for the CLI sub-commands.

``hypar models``, ``hypar placement`` and ``hypar trace`` previously had
no end-to-end coverage; these tests pin their *exact* stdout for fixed
inputs.  Everything printed is deterministic (model zoo shapes, the
searched assignment, the analytic byte counts), so any drift -- a changed
search result, a broken formatter, an accidental cost-model change -- shows
up as a diff here.  Update the expected blocks deliberately when output
changes are intended.
"""

import textwrap

from repro.cli import main

MODELS_GOLDEN = textwrap.dedent(
    """\
    SFC          4 weighted layers (0 conv, 4 fc), 140,722,176 weights
    SCONV        4 weighted layers (4 conv, 0 fc), 100,500 weights
    Lenet-c      4 weighted layers (2 conv, 2 fc), 430,500 weights
    Cifar-c      5 weighted layers (3 conv, 2 fc), 145,376 weights
    AlexNet      8 weighted layers (5 conv, 3 fc), 62,367,776 weights
    VGG-A       11 weighted layers (8 conv, 3 fc), 132,851,392 weights
    VGG-B       13 weighted layers (10 conv, 3 fc), 133,035,712 weights
    VGG-C       16 weighted layers (13 conv, 3 fc), 133,625,536 weights
    VGG-D       16 weighted layers (13 conv, 3 fc), 138,344,128 weights
    VGG-E       19 weighted layers (16 conv, 3 fc), 143,652,544 weights
    """
)

PLACEMENT_GOLDEN = textwrap.dedent(
    """\
    Lenet-c: 4 accelerators, batch 256
      max per-accelerator footprint: 0.009 GiB (accelerator 0)
      conv1        kernel replicated  4.0x, output feature map replicated  1.0x
      conv2        kernel replicated  4.0x, output feature map replicated  1.0x
      fc1          kernel replicated  2.0x, output feature map replicated  2.0x
      fc2          kernel replicated  2.0x, output feature map replicated  2.0x
    """
)

TRACE_GOLDEN = textwrap.dedent(
    """\
    Lenet-c: 56 transfers, 0.003 GB per training step
    by phase:
      forward         0.001 GB
      backward        0.001 GB
      gradient        0.001 GB
    by hierarchy level:
      H1              0.001 GB
      H2              0.002 GB
    by layer:
      conv1           0.000 GB
      conv2           0.001 GB
      fc1             0.002 GB
      fc2             0.000 GB
    """
)


class TestGoldenOutputs:
    def test_models_output_is_pinned(self, capsys):
        assert main(["models"]) == 0
        assert capsys.readouterr().out == MODELS_GOLDEN

    def test_placement_output_is_pinned(self, capsys):
        assert main(["placement", "Lenet-c", "--accelerators", "4"]) == 0
        assert capsys.readouterr().out == PLACEMENT_GOLDEN

    def test_trace_output_is_pinned(self, capsys):
        assert (
            main(["trace", "Lenet-c", "--accelerators", "4", "--batch-size", "64"])
            == 0
        )
        assert capsys.readouterr().out == TRACE_GOLDEN

    def test_strategies_listing_mentions_every_member(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        for token in ("dp", "mp", "pp", "stage-local", "--strategies"):
            assert token in out

    def test_partition_with_pipeline_space_reports_pp(self, capsys):
        assert main(["partition", "AlexNet", "--strategies", "dp,mp,pp"]) == 0
        out = capsys.readouterr().out
        assert "pp" in out and "dp" in out
