"""Golden-output tests for the CLI sub-commands.

``hypar models``, ``hypar placement`` and ``hypar trace`` previously had
no end-to-end coverage; these tests pin their *exact* stdout for fixed
inputs.  Everything printed is deterministic (model zoo shapes, the
searched assignment, the analytic byte counts), so any drift -- a changed
search result, a broken formatter, an accidental cost-model change -- shows
up as a diff here.  Update the expected blocks deliberately when output
changes are intended.
"""

import json
import textwrap

from repro.cli import main

MODELS_GOLDEN = textwrap.dedent(
    """\
    SFC          4 weighted layers (0 conv, 4 fc), 140,722,176 weights
    SCONV        4 weighted layers (4 conv, 0 fc), 100,500 weights
    Lenet-c      4 weighted layers (2 conv, 2 fc), 430,500 weights
    Cifar-c      5 weighted layers (3 conv, 2 fc), 145,376 weights
    AlexNet      8 weighted layers (5 conv, 3 fc), 62,367,776 weights
    VGG-A       11 weighted layers (8 conv, 3 fc), 132,851,392 weights
    VGG-B       13 weighted layers (10 conv, 3 fc), 133,035,712 weights
    VGG-C       16 weighted layers (13 conv, 3 fc), 133,625,536 weights
    VGG-D       16 weighted layers (13 conv, 3 fc), 138,344,128 weights
    VGG-E       19 weighted layers (16 conv, 3 fc), 143,652,544 weights
    ResNet-S    10 weighted layers (9 conv, 1 fc), 161,200 weights, 12 edges (DAG)
    Inception-S  11 weighted layers (10 conv, 1 fc), 676,016 weights, 14 edges (DAG)
    gpt_s-12    50 weighted layers (0 conv, 50 fc), 6,397,440 weights
    bert_s-12   50 weighted layers (0 conv, 50 fc), 11,554,816 weights
    gpt_r-12    50 weighted layers (0 conv, 50 fc), 6,397,440 weights, 60 edges (DAG)
    """
)

GPT_S_TABLE_GOLDEN = textwrap.dedent(
    """\
    Model 'gpt_s-2': input [64]
      [ 0] embed      fc               [64] ->            [192] weights=      12,288 macs/sample=        12,288
      [ 1] b0_qkv     fc              [192] ->            [576] weights=     110,592 macs/sample=       110,592
      [ 2] b0_proj    fc              [576] ->            [192] weights=     110,592 macs/sample=       110,592
      [ 3] b0_up      fc              [192] ->            [768] weights=     147,456 macs/sample=       147,456
      [ 4] b0_down    fc              [768] ->            [192] weights=     147,456 macs/sample=       147,456
      [ 5] b1_qkv     fc              [192] ->            [576] weights=     110,592 macs/sample=       110,592
      [ 6] b1_proj    fc              [576] ->            [192] weights=     110,592 macs/sample=       110,592
      [ 7] b1_up      fc              [192] ->            [768] weights=     147,456 macs/sample=       147,456
      [ 8] b1_down    fc              [768] ->            [192] weights=     147,456 macs/sample=       147,456
      [ 9] head       fc              [192] ->           [1000] weights=     192,000 macs/sample=       192,000
      total: 10 weighted layers (0 conv, 10 fc), 1,236,480 weights
      edges: chain
    """
)

RESNET_TABLE_GOLDEN = textwrap.dedent(
    """\
    Model 'ResNet-S': input [32x32x3]
      [ 0] stem       conv        [32x32x3] ->       [32x32x16] weights=         432 macs/sample=       442,368
      [ 1] res1a      conv       [32x32x16] ->       [32x32x16] weights=       2,304 macs/sample=     2,359,296
      [ 2] res1b      conv       [32x32x16] ->       [32x32x16] weights=       2,304 macs/sample=     2,359,296
      [ 3] down1      conv       [32x32x16] ->       [16x16x32] weights=       4,608 macs/sample=     1,179,648
      [ 4] res2a      conv       [16x16x32] ->       [16x16x32] weights=       9,216 macs/sample=     2,359,296
      [ 5] res2b      conv       [16x16x32] ->       [16x16x32] weights=       9,216 macs/sample=     2,359,296
      [ 6] down2      conv       [16x16x32] ->         [8x8x64] weights=      18,432 macs/sample=     1,179,648
      [ 7] res3a      conv         [8x8x64] ->         [8x8x64] weights=      36,864 macs/sample=     2,359,296
      [ 8] res3b      conv         [8x8x64] ->         [8x8x64] weights=      36,864 macs/sample=     2,359,296
      [ 9] fc         fc             [4096] ->             [10] weights=      40,960 macs/sample=        40,960
      total: 10 weighted layers (9 conv, 1 fc), 161,200 weights
      edges: 0->1 1->2 0->3 2->3 3->4 4->5 3->6 5->6 6->7 7->8 6->9 8->9
    """
)

LENET_JSON_GOLDEN = textwrap.dedent(
    """\
    [
      {
        "name": "Lenet-c",
        "input_shape": [
          28,
          28,
          1
        ],
        "is_chain": true,
        "layers": [
          {
            "index": 0,
            "name": "conv1",
            "type": "conv",
            "input_shape": "[28x28x1]",
            "output_shape": "[24x24x20]",
            "weights": 500,
            "macs_per_sample": 288000,
            "inputs": [],
            "merge": null
          },
          {
            "index": 1,
            "name": "conv2",
            "type": "conv",
            "input_shape": "[12x12x20]",
            "output_shape": "[8x8x50]",
            "weights": 25000,
            "macs_per_sample": 1600000,
            "inputs": [
              0
            ],
            "merge": null
          },
          {
            "index": 2,
            "name": "fc1",
            "type": "fc",
            "input_shape": "[800]",
            "output_shape": "[500]",
            "weights": 400000,
            "macs_per_sample": 400000,
            "inputs": [
              1
            ],
            "merge": null
          },
          {
            "index": 3,
            "name": "fc2",
            "type": "fc",
            "input_shape": "[500]",
            "output_shape": "[10]",
            "weights": 5000,
            "macs_per_sample": 5000,
            "inputs": [
              2
            ],
            "merge": null
          }
        ],
        "edges": [
          [
            0,
            1
          ],
          [
            1,
            2
          ],
          [
            2,
            3
          ]
        ],
        "total_weights": 430500
      }
    ]
    """
)

PLACEMENT_GOLDEN = textwrap.dedent(
    """\
    Lenet-c: 4 accelerators, batch 256
      max per-accelerator footprint: 0.009 GiB (accelerator 0)
      conv1        kernel replicated  4.0x, output feature map replicated  1.0x
      conv2        kernel replicated  4.0x, output feature map replicated  1.0x
      fc1          kernel replicated  2.0x, output feature map replicated  2.0x
      fc2          kernel replicated  2.0x, output feature map replicated  2.0x
    """
)

SIMULATE_ANALYTIC_GOLDEN = textwrap.dedent(
    """\
    Lenet-c / HyPar on h-tree (4 accelerators, batch 64, analytic engine)
      levels:        dp-dp-mp-mp | dp-dp-mp-mp
      step time:     8.342 ms
      energy:        0.011 J
      communication: 0.003 GB
      forward:       compute 0.257 ms, link busy 3.354 ms
      backward:      compute 0.257 ms, link busy 2.688 ms
      gradient:      compute 0.257 ms, link busy 1.530 ms
    """
)

SIMULATE_NETWORK_GOLDEN = textwrap.dedent(
    """\
    Lenet-c / HyPar on h-tree (4 accelerators, batch 64, network engine)
      levels:        dp-dp-mp-mp | dp-dp-mp-mp
      step time:     8.288 ms
      energy:        0.011 J
      communication: 0.003 GB
      forward:       compute 0.257 ms, link busy 5.030 ms
      backward:      compute 0.257 ms, link busy 4.032 ms
      gradient:      compute 0.257 ms, link busy 2.550 ms
    """
)

TRACE_GOLDEN = textwrap.dedent(
    """\
    Lenet-c: 56 transfers, 0.003 GB per training step
    by phase:
      forward         0.001 GB
      backward        0.001 GB
      gradient        0.001 GB
    by hierarchy level:
      H1              0.001 GB
      H2              0.002 GB
    by layer:
      conv1           0.000 GB
      conv2           0.001 GB
      fc1             0.002 GB
      fc2             0.000 GB
    """
)


class TestGoldenOutputs:
    def test_models_output_is_pinned(self, capsys):
        assert main(["models"]) == 0
        assert capsys.readouterr().out == MODELS_GOLDEN

    def test_models_detail_table_is_pinned(self, capsys):
        assert main(["models", "resnet_s"]) == 0
        assert capsys.readouterr().out == RESNET_TABLE_GOLDEN

    def test_models_parameterized_table_is_pinned(self, capsys):
        assert main(["models", "gpt_s", "--layers", "2"]) == 0
        assert capsys.readouterr().out == GPT_S_TABLE_GOLDEN

    def test_models_parameterized_json_matches_table_shapes(self, capsys):
        assert main(["models", "bert_s-3", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (model,) = payload
        assert model["name"] == "bert_s-3"
        assert model["is_chain"] is True
        assert len(model["layers"]) == 4 * 3 + 2
        assert model["layers"][0]["name"] == "embed"
        assert model["layers"][-1]["name"] == "head"

    def test_models_layers_requires_model_names(self, capsys):
        assert main(["models", "--layers", "4"]) == 2
        assert "--layers requires model names" in capsys.readouterr().err

    def test_models_layers_on_fixed_depth_model_fails(self, capsys):
        assert main(["models", "vgg16", "--layers", "4"]) == 2
        assert "fixed depth" in capsys.readouterr().err

    def test_models_unknown_name_lists_parameterized_families(self, capsys):
        assert main(["models", "nope"]) == 2
        err = capsys.readouterr().err
        assert "gpt_s-<N>" in err and "bert_s-<N>" in err

    def test_models_json_is_pinned(self, capsys):
        assert main(["models", "Lenet-c", "--format", "json"]) == 0
        assert capsys.readouterr().out == LENET_JSON_GOLDEN

    def test_models_json_carries_dag_edges(self, capsys):
        assert main(["models", "inception_s", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (model,) = payload
        assert model["name"] == "Inception-S"
        assert model["is_chain"] is False
        assert [0, 1] in model["edges"] and [0, 3] in model["edges"]
        merges = [layer for layer in model["layers"] if layer["merge"]]
        assert [layer["merge"] for layer in merges] == ["concat", "concat"]
        assert merges[0]["inputs"] == [1, 2, 4]

    def test_placement_output_is_pinned(self, capsys):
        assert main(["placement", "Lenet-c", "--accelerators", "4"]) == 0
        assert capsys.readouterr().out == PLACEMENT_GOLDEN

    def test_trace_output_is_pinned(self, capsys):
        assert (
            main(["trace", "Lenet-c", "--accelerators", "4", "--batch-size", "64"])
            == 0
        )
        assert capsys.readouterr().out == TRACE_GOLDEN

    def test_simulate_analytic_output_is_pinned(self, capsys):
        assert (
            main(["simulate", "Lenet-c", "--accelerators", "4", "--batch-size", "64"])
            == 0
        )
        assert capsys.readouterr().out == SIMULATE_ANALYTIC_GOLDEN

    def test_simulate_network_output_is_pinned(self, capsys):
        """The network engine overlaps gradient all-reduce with backprop,
        so the same searched assignment finishes (slightly) sooner while
        the per-link busy time it reports is higher than the analytic
        serialized-occupancy figure."""
        assert (
            main(
                [
                    "simulate", "Lenet-c", "--accelerators", "4",
                    "--batch-size", "64", "--sim-engine", "network",
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == SIMULATE_NETWORK_GOLDEN

    def test_simulate_help_documents_the_engines(self, capsys):
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--sim-engine {analytic,network}" in out
        assert "contention-aware" in out

    def test_strategies_listing_mentions_every_member(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        for token in ("dp", "mp", "pp", "stage-local", "--strategies"):
            assert token in out

    def test_partition_with_pipeline_space_reports_pp(self, capsys):
        assert main(["partition", "AlexNet", "--strategies", "dp,mp,pp"]) == 0
        out = capsys.readouterr().out
        assert "pp" in out and "dp" in out
