"""Tests for the deterministic JSON/CSV artifact writers."""

import json

from repro.sweep.artifacts import payload_to_json, rows_to_csv, write_csv, write_json


class TestCsv:
    def test_header_and_rows_in_order(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        assert rows_to_csv(rows) == "a,b\n1,2.5\n3,4.5\n"

    def test_column_union_in_first_appearance_order(self):
        rows = [{"a": 1}, {"b": 2, "a": 3}]
        assert rows_to_csv(rows).splitlines()[0] == "a,b"

    def test_missing_cells_are_empty(self):
        rows = [{"a": 1}, {"b": 2}]
        assert rows_to_csv(rows) == "a,b\n1,\n,2\n"

    def test_floats_round_trip_exactly(self):
        value = 0.1 + 0.2  # not exactly 0.3
        text = rows_to_csv([{"x": value}])
        assert float(text.splitlines()[1]) == value

    def test_commas_in_cells_are_quoted(self):
        text = rows_to_csv([{"strategies": "dp,mp", "n": 1}])
        assert text.splitlines()[1] == '"dp,mp",1'

    def test_write_csv_creates_parents(self, tmp_path):
        path = tmp_path / "nested" / "out.csv"
        write_csv(str(path), [{"a": 1}])
        assert path.read_text() == "a\n1\n"


class TestJson:
    def test_payload_is_key_sorted_and_stable(self):
        payload = {"b": 1, "a": [1, 2]}
        text = payload_to_json(payload)
        assert text == payload_to_json(payload)
        assert text.index('"a"') < text.index('"b"')

    def test_floats_round_trip_exactly(self):
        value = 1.0 / 3.0
        assert json.loads(payload_to_json({"x": value}))["x"] == value

    def test_write_json(self, tmp_path):
        path = tmp_path / "artifacts" / "out.json"
        write_json(str(path), {"rows": [1, 2]})
        assert json.loads(path.read_text()) == {"rows": [1, 2]}
