"""Tests for the declarative sweep grid description."""

import json

import pytest

from repro.sweep.spec import PAPER_MODELS, PRESETS, SweepSpec, load_spec


class TestSweepSpec:
    def test_points_expand_the_full_product_deterministically(self):
        spec = SweepSpec(
            name="grid",
            models=("Lenet-c", "AlexNet"),
            batch_sizes=(64, 256),
            topologies=("htree", "torus"),
        )
        points = spec.points()
        assert len(points) == spec.num_points == 8
        assert [point.index for point in points] == list(range(8))
        # Models vary outermost, the later axes innermost.
        assert [point.model for point in points[:4]] == ["Lenet-c"] * 4
        assert [point.topology for point in points[:2]] == ["htree", "torus"]
        assert points == spec.points()

    def test_point_labels_are_unique(self):
        spec = PRESETS["fig12"]
        labels = [point.label() for point in spec.points()]
        assert len(set(labels)) == len(labels)

    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError):
            SweepSpec(name="empty", models=())

    def test_rejects_non_power_of_two_array_sizes(self):
        with pytest.raises(ValueError):
            SweepSpec(name="bad", models=("Lenet-c",), array_sizes=(12,))

    def test_rejects_unknown_topology(self):
        with pytest.raises(ValueError):
            SweepSpec(name="bad", models=("Lenet-c",), topologies=("ring",))

    def test_rejects_unknown_scaling_mode(self):
        with pytest.raises(ValueError):
            SweepSpec(name="bad", models=("Lenet-c",), scaling_modes=("magic",))

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            SweepSpec(name="bad", models=("Lenet-c",), strategy_spaces=("dp,zz",))


class TestJsonRoundTrip:
    def test_round_trip(self):
        spec = PRESETS["smoke"]
        assert SweepSpec.from_json(spec.to_json()) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep spec keys"):
            SweepSpec.from_json({"name": "x", "models": ["Lenet-c"], "surprise": 1})

    def test_bare_string_axis_rejected(self):
        # tuple("VGG-A") would silently explode into single letters.
        with pytest.raises(ValueError, match="must be a list"):
            SweepSpec.from_json({"name": "x", "models": "VGG-A"})
        with pytest.raises(ValueError, match="must be a list"):
            SweepSpec.from_json(
                {"name": "x", "models": ["Lenet-c"], "topologies": "htree"}
            )

    def test_missing_required_keys_rejected(self):
        with pytest.raises(ValueError, match="requires at least"):
            SweepSpec.from_json({"name": "x"})

    def test_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(PRESETS["smoke"].to_json()))
        assert SweepSpec.from_file(str(path)) == PRESETS["smoke"]


class TestPresets:
    def test_fig6_is_the_paper_grid(self):
        spec = PRESETS["fig6"]
        assert spec.models == PAPER_MODELS
        assert spec.batch_sizes == (256,)
        assert spec.array_sizes == (16,)
        assert spec.topologies == ("htree",)

    def test_every_preset_expands(self):
        for name, spec in PRESETS.items():
            assert spec.num_points >= 1, name
            assert spec.points()

    def test_load_spec_resolves_presets_and_files(self, tmp_path):
        assert load_spec("smoke") == PRESETS["smoke"]
        path = tmp_path / "mine.json"
        path.write_text(json.dumps({"name": "mine", "models": ["Lenet-c"]}))
        assert load_spec(str(path)).name == "mine"
        with pytest.raises(ValueError, match="unknown sweep preset"):
            load_spec("not-a-preset")


class TestSinglePoint:
    def test_single_builds_a_canonical_validated_point(self):
        from repro.sweep.spec import SweepPoint

        point = SweepPoint.single(
            "Lenet-c",
            batch_size=64,
            num_accelerators=4,
            scaling_mode="UNIFORM",
            strategies="dp,mp,pp",
        )
        assert point.index == 0
        assert point.scaling_mode == "uniform"
        assert point.strategies == "dp,mp,pp"
        assert point.label() == "Lenet-c/b64/n4/htree/uniform/dp,mp,pp"

    def test_single_rejects_bad_axes_like_a_spec(self):
        from repro.sweep.spec import SweepPoint

        with pytest.raises(ValueError, match="powers of two"):
            SweepPoint.single("Lenet-c", num_accelerators=12)
        with pytest.raises(ValueError, match="unknown topology"):
            SweepPoint.single("Lenet-c", topology="mesh")

    def test_single_point_evaluates_like_the_grid(self):
        from repro.sweep.runner import evaluate_point, run_sweep
        from repro.sweep.spec import SweepPoint

        spec = SweepSpec(
            name="one",
            models=("SFC",),
            batch_sizes=(64,),
            array_sizes=(4,),
        )
        via_grid = run_sweep(spec).records[0]
        via_single = evaluate_point(
            SweepPoint.single("SFC", batch_size=64, num_accelerators=4)
        )
        assert via_single == via_grid


class TestSimEngineAxis:
    def test_default_grid_is_unchanged_by_the_new_axis(self):
        """One implicit "analytic" engine: same point count, same labels,
        same order as before the axis existed."""
        spec = PRESETS["smoke"]
        assert spec.sim_engines == ("analytic",)
        points = spec.points()
        assert all(point.sim_engine == "analytic" for point in points)
        assert all("/analytic" not in point.label() for point in points)
        assert "sim_engines" in spec.to_json()

    def test_engine_axis_expands_innermost(self):
        spec = SweepSpec(
            name="engines",
            models=("Lenet-c",),
            batch_sizes=(64,),
            array_sizes=(4,),
            sim_engines=("analytic", "network"),
        )
        points = spec.points()
        assert spec.num_points == len(points) == 2
        # The engine is the innermost axis: adjacent points differ only
        # in the engine, so warm cost tables are reused back to back.
        assert [point.sim_engine for point in points] == ["analytic", "network"]
        assert points[1].label() == points[0].label() + "/network"

    def test_json_round_trip_carries_the_axis(self):
        spec = SweepSpec(
            name="engines",
            models=("Lenet-c",),
            sim_engines=("network",),
        )
        payload = spec.to_json()
        assert payload["sim_engines"] == ["network"]
        assert SweepSpec.from_json(payload) == spec

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown sim engine"):
            SweepSpec(name="bad", models=("Lenet-c",), sim_engines=("psychic",))

    def test_single_point_validates_and_labels_the_engine(self):
        from repro.sweep.spec import SweepPoint

        point = SweepPoint.single(
            "Lenet-c", batch_size=64, num_accelerators=4, sim_engine="network"
        )
        assert point.sim_engine == "network"
        assert point.label() == "Lenet-c/b64/n4/htree/parallelism-aware/dp,mp/network"
        with pytest.raises(ValueError, match="unknown sim engine"):
            SweepPoint.single("Lenet-c", sim_engine="psychic")

    def test_rows_carry_the_engine_only_when_it_is_not_the_default(self):
        from repro.sweep.runner import evaluate_point
        from repro.sweep.spec import SweepPoint

        base = dict(batch_size=64, num_accelerators=4)
        analytic = evaluate_point(SweepPoint.single("SFC", **base))
        network = evaluate_point(
            SweepPoint.single("SFC", sim_engine="network", **base)
        )
        assert "sim_engine" not in analytic.to_row()
        assert network.to_row()["sim_engine"] == "network"

    def test_describe_counts_the_engines(self):
        spec = SweepSpec(
            name="engines",
            models=("Lenet-c",),
            sim_engines=("analytic", "network"),
        )
        assert "2 sim engines" in spec.describe()
