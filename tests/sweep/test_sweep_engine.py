"""Tests for the sweep engine: deterministic chunking and serial/parallel parity."""

import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import pytest

import repro.sweep.engine as engine_module
from repro.core import kernels
from repro.sweep.engine import (
    SweepEngine,
    chunk_tasks,
    default_workers,
    owned_engine,
    resolve_engine,
)


def _square(x: int) -> int:
    """Module-level task function (picklable for the process pool)."""
    return x * x


def _pid_task(_: int) -> int:
    return os.getpid()


def _slow_square(x: int) -> int:
    """Slow enough that shutdown can race an in-flight map."""
    time.sleep(0.05)
    return x * x


class TestChunking:
    def test_chunks_cover_every_task_in_order(self):
        spans = chunk_tasks(10, 3)
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_chunking_is_a_pure_function_of_count_and_size(self):
        assert chunk_tasks(100, 7) == chunk_tasks(100, 7)

    def test_single_chunk_when_size_covers_everything(self):
        assert chunk_tasks(4, 100) == [(0, 4)]

    def test_rejects_non_positive_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_tasks(10, 0)


class TestSerialEngine:
    def test_map_preserves_task_order(self):
        engine = SweepEngine.serial()
        assert engine.map(_square, range(10)) == [x * x for x in range(10)]

    def test_map_accepts_closures_in_process(self):
        engine = SweepEngine.serial()
        offset = 7
        assert engine.map(lambda x: x + offset, [1, 2, 3]) == [8, 9, 10]

    def test_empty_task_list(self):
        assert SweepEngine.serial().map(_square, []) == []

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            SweepEngine(workers=0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestParallelEngine:
    def test_parallel_matches_serial_exactly(self):
        tasks = list(range(23))
        serial = SweepEngine.serial().map(_square, tasks)
        with SweepEngine(workers=2) as engine:
            parallel = engine.map(_square, tasks)
        assert parallel == serial

    def test_results_in_task_order_whatever_the_chunking(self):
        tasks = list(range(17))
        with SweepEngine(workers=2, chunk_size=1) as engine:
            assert engine.map(_square, tasks) == [x * x for x in tasks]

    def test_pool_reused_across_maps(self):
        with SweepEngine(workers=2) as engine:
            first = set(engine.map(_pid_task, range(8)))
            second = set(engine.map(_pid_task, range(8)))
        assert first & second, "the worker pool should persist between map calls"
        assert os.getpid() not in first

    def test_close_is_idempotent(self):
        engine = SweepEngine(workers=2)
        engine.map(_square, [1])
        engine.close()
        engine.close()


class TestShutdownSafety:
    """Regressions for the signal-safe, idempotent pool teardown.

    A SIGTERM'd ``hypar serve`` (and the CI teardown) closes the engine
    from a thread other than the one mapping on it, possibly more than
    once; none of these paths may leak a ``ProcessPoolExecutor``, orphan
    a worker, or corrupt results.
    """

    def test_double_close_with_a_live_pool(self):
        engine = SweepEngine(workers=2)
        engine.map(_square, range(8))
        engine.close()
        assert engine._executor is None
        engine.close()
        assert engine._executor is None

    def test_concurrent_closes_from_many_threads(self):
        engine = SweepEngine(workers=2)
        engine.map(_square, range(8))
        threads = [threading.Thread(target=engine.close) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert engine._executor is None

    def test_close_after_degrade_to_serial_is_a_no_op(self):
        engine = SweepEngine(workers=2)
        engine._pool_broken = True  # simulate a sandbox without fork
        assert engine.map(_square, [1, 2, 3]) == [1, 4, 9]
        engine.close()
        engine.close()
        assert engine._executor is None

    def test_closed_engine_never_respawns_a_pool(self):
        # A request thread still draining during daemon teardown must not
        # bring the worker pool back from the dead; it finishes serially.
        engine = SweepEngine(workers=2)
        engine.map(_square, range(8))
        engine.close()
        assert engine.map(_square, range(8)) == [x * x for x in range(8)]
        assert engine._executor is None
        assert not engine.pool_active

    def test_close_racing_an_inflight_map_keeps_results_correct(self):
        engine = SweepEngine(workers=2, chunk_size=1)
        tasks = list(range(12))
        results: list[list[int]] = []

        def run():
            results.append(engine.map(_slow_square, tasks))

        mapper = threading.Thread(target=run)
        mapper.start()
        time.sleep(0.1)
        engine.close()
        mapper.join(60.0)
        assert not mapper.is_alive()
        # Whether the pool finished the map, was cancelled mid-flight
        # (serial rerun), or never spawned, the results are identical.
        assert results == [[x * x for x in tasks]]
        assert engine._executor is None


class TestFaultHarness:
    """Worker-kill chaos against the engine's serial-fallback guarantee."""

    def test_killed_worker_degrades_to_a_byte_identical_serial_run(self):
        from repro.resilience.faults import FaultPlan, faulty_map

        plan = FaultPlan(kill_tasks=(3,))
        tasks = list(range(10))
        expected = faulty_map(SweepEngine.serial(), _square, tasks, plan)
        assert expected == [x * x for x in tasks]
        with SweepEngine(workers=2) as engine:
            with pytest.warns(RuntimeWarning, match="process pool failed"):
                degraded = faulty_map(engine, _square, tasks, plan)
            assert degraded == expected
            assert engine.pool_active is False
            assert engine.pool_degraded is True

    def test_closed_engine_survives_fault_load_without_respawning(self):
        from repro.resilience.faults import FaultPlan, faulty_map

        plan = FaultPlan(kill_tasks=(0,))
        engine = SweepEngine(workers=2)
        engine.map(_square, range(4))
        engine.close()
        # Post-close maps run in the parent process, where the kill
        # wrapper never fires: correct results, no resurrected pool.
        results = faulty_map(engine, _square, list(range(6)), plan)
        assert results == [x * x for x in range(6)]
        assert engine._executor is None
        assert not engine.pool_active

    def test_degraded_flag_stays_clear_on_healthy_runs(self):
        with SweepEngine(workers=2) as engine:
            engine.map(_square, range(4))
            assert engine.pool_degraded is False
            assert engine.pool_active is True


class _RecordingExecutor:
    """Stand-in for ProcessPoolExecutor that records its construction."""

    created: list["_RecordingExecutor"] = []

    def __init__(self, max_workers=None, initializer=None, initargs=()):
        self.max_workers = max_workers
        self.initializer = initializer
        self.initargs = initargs
        _RecordingExecutor.created.append(self)

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestBackendPropagation:
    """``--backend`` must reach workers under every start method.

    Under ``spawn``/``forkserver`` a worker interpreter imports
    :mod:`repro` from scratch and would silently run the ``"numpy"``
    default; the pool initializer re-applies the parent's choice.
    """

    @pytest.fixture(autouse=True)
    def _fresh_recorder(self, monkeypatch):
        monkeypatch.setattr(_RecordingExecutor, "created", [])
        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", _RecordingExecutor)

    def test_explicit_backend_ships_via_the_pool_initializer(self):
        engine = SweepEngine(workers=2, backend="compiled")
        assert engine._ensure_executor() is not None
        (executor,) = _RecordingExecutor.created
        assert executor.initializer is engine_module._worker_init
        assert executor.initargs == ("compiled",)
        engine.close()

    def test_default_backend_is_captured_at_pool_creation(self):
        # An engine built before `--backend` is applied (the service
        # constructs its engine at import-wiring time) must still ship
        # the final process default when the pool actually spawns.
        engine = SweepEngine(workers=2)
        previous = kernels.get_default_backend()
        try:
            kernels.set_default_backend("compiled-parallel")
            engine._ensure_executor()
        finally:
            kernels.set_default_backend(previous)
        (executor,) = _RecordingExecutor.created
        assert executor.initargs == ("compiled-parallel",)
        engine.close()

    def test_invalid_backend_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown backend"):
            SweepEngine(workers=2, backend="fast")


class TestWorkerInit:
    def test_worker_init_sets_the_process_default(self):
        previous = kernels.get_default_backend()
        try:
            engine_module._worker_init("compiled")
            assert kernels.get_default_backend() == "compiled"
        finally:
            kernels.set_default_backend(previous)


@pytest.mark.parametrize("method", ["spawn"])
def test_backend_survives_a_fresh_interpreter_start_method(method):
    """Regression: a spawned worker adopts the parent's backend.

    This is the real failure mode the initializer exists for -- a spawned
    interpreter re-imports :mod:`repro.core.kernels` and lands on the
    ``"numpy"`` module default unless ``_worker_init`` runs.  Skipped in
    sandboxes that cannot start the method at all.
    """
    try:
        context = multiprocessing.get_context(method)
    except ValueError:
        pytest.skip(f"start method {method!r} unavailable")
    try:
        with ProcessPoolExecutor(
            max_workers=1,
            mp_context=context,
            initializer=engine_module._worker_init,
            initargs=("compiled",),
        ) as pool:
            seen = pool.submit(kernels.get_default_backend).result(timeout=120)
    except (OSError, PermissionError, BrokenProcessPool) as error:
        pytest.skip(f"cannot spawn worker processes here ({error})")
    assert seen == "compiled"


class TestResolveEngine:
    def test_none_is_serial(self):
        assert resolve_engine(None).workers == 1

    def test_int_is_worker_count(self):
        engine = resolve_engine(3)
        assert engine.workers == 3
        engine.close()

    def test_engine_passes_through(self):
        engine = SweepEngine.serial()
        assert resolve_engine(engine) is engine


class TestOwnedEngine:
    def test_closes_pools_it_created_from_a_worker_count(self):
        with owned_engine(2) as engine:
            engine.map(_square, range(4))
            assert engine._executor is not None
        # The pool created by the normalization must not outlive the block.
        assert engine._executor is None

    def test_leaves_caller_owned_engines_open(self):
        external = SweepEngine(workers=2)
        try:
            with owned_engine(external) as engine:
                assert engine is external
                engine.map(_square, range(4))
            assert external._executor is not None
        finally:
            external.close()
