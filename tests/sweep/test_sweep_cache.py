"""Tests for the shared compiled-table cache and its keys."""

import numpy as np
import pytest

from repro.core.communication import CommunicationModel
from repro.core.costs import TableCache, table_cache_key
from repro.core.hierarchical import HierarchicalPartitioner
from repro.nn.model_zoo import lenet_c, vgg_a
from repro.sim.training import TrainingSimulator
from repro.sweep.cache import clear_caches, runtime_cached, shared_table_cache


class TestTableCacheKey:
    def test_equal_models_share_a_key(self):
        # Two separately built zoo models are structurally equal, so sweep
        # workers that unpickle their own copies still share cache entries.
        assert table_cache_key(lenet_c(), 256, 4) == table_cache_key(lenet_c(), 256, 4)

    def test_key_separates_every_axis(self):
        base = table_cache_key(lenet_c(), 256, 4)
        assert table_cache_key(vgg_a(), 256, 4) != base
        assert table_cache_key(lenet_c(), 128, 4) != base
        assert table_cache_key(lenet_c(), 256, 3) != base
        assert table_cache_key(lenet_c(), 256, 4, scaling_mode="uniform") != base
        assert table_cache_key(lenet_c(), 256, 4, strategies="dp,mp,pp") != base
        assert (
            table_cache_key(
                lenet_c(), 256, 4, communication_model=CommunicationModel(bytes_per_element=2)
            )
            != base
        )

    def test_table_reports_its_own_key(self):
        partitioner = HierarchicalPartitioner(num_levels=2)
        table = partitioner.compile_table(lenet_c(), 64)
        assert table.cache_key == table_cache_key(lenet_c(), 64, 2)


class TestTableCache:
    def test_hit_and_miss_counters(self):
        cache = TableCache()
        first = cache.get_or_compile(lenet_c(), 64, 2)
        again = cache.get_or_compile(lenet_c(), 64, 2)
        assert first is again
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "size": 1,
            "evictions": 0,
            "hit_rate": 0.5,
        }

    def test_compilation_happens_once_per_configuration_not_per_point(self):
        cache = TableCache()
        for _ in range(5):
            cache.get_or_compile(lenet_c(), 64, 2)
        assert cache.misses == 1
        assert cache.hits == 4

    def test_distinct_configurations_compile_separately(self):
        cache = TableCache()
        cache.get_or_compile(lenet_c(), 64, 2)
        cache.get_or_compile(lenet_c(), 128, 2)
        assert cache.stats() == {
            "hits": 0,
            "misses": 2,
            "size": 2,
            "evictions": 0,
            "hit_rate": 0.0,
        }

    def test_limit_flushes(self):
        cache = TableCache(limit=1)
        cache.get_or_compile(lenet_c(), 64, 2)
        cache.get_or_compile(lenet_c(), 128, 2)
        assert len(cache) == 1
        assert cache.evictions == 1
        assert cache.stats()["evictions"] == 1

    def test_rejects_non_positive_limit(self):
        with pytest.raises(ValueError):
            TableCache(limit=0)

    def test_cached_tables_are_float_identical_to_fresh_compiles(self):
        cache = TableCache()
        cached = cache.get_or_compile(lenet_c(), 64, 2)
        fresh = HierarchicalPartitioner(num_levels=2).compile_table(lenet_c(), 64)
        codes = np.arange(1 << fresh.total_digits)
        np.testing.assert_array_equal(cached.score_codes(codes), fresh.score_codes(codes))


class TestSharedCacheWiring:
    def test_simulator_and_partitioner_share_one_compilation(self):
        cache = TableCache()
        model = lenet_c()
        simulator = TrainingSimulator(table_cache=cache)
        partitioner = HierarchicalPartitioner(num_levels=4)
        sim_table = simulator.cost_table(model, 256)
        search_table = partitioner.compile_table(model, 256, table_cache=cache)
        assert sim_table is search_table
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "size": 1,
            "evictions": 0,
            "hit_rate": 0.5,
        }

    def test_simulate_accepts_the_shared_table_for_an_equal_model(self):
        # The cache hands out tables keyed structurally; a caller holding a
        # *different but equal* model object (e.g. unpickled in a worker)
        # must be able to thread the table through simulate().
        cache = TableCache()
        simulator = TrainingSimulator(table_cache=cache)
        table = simulator.cost_table(lenet_c(), 64)
        other_copy = lenet_c()
        partitioner = HierarchicalPartitioner(num_levels=4)
        assignment = partitioner.partition(other_copy, 64, table=table).assignment
        report = simulator.simulate(other_copy, assignment, 64, cost_table=table)
        assert report.step_seconds > 0


class TestProcessGlobalCaches:
    def test_shared_table_cache_is_a_singleton(self):
        assert shared_table_cache() is shared_table_cache()

    def test_runtime_cached_memoizes_by_key(self):
        clear_caches()
        calls = []

        def factory():
            calls.append(1)
            return object()

        first = runtime_cached(("test-key", 1), factory)
        second = runtime_cached(("test-key", 1), factory)
        assert first is second
        assert len(calls) == 1
        assert runtime_cached(("test-key", 2), factory) is not first
        clear_caches()
