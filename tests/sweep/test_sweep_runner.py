"""Tests for the grid runner: parity, caching, artifacts, records."""

import pytest

from repro.sweep import (
    DATA_PARALLELISM,
    HYPAR,
    MODEL_PARALLELISM,
    SweepEngine,
    SweepSpec,
    clear_caches,
    evaluate_point,
    load_spec,
    run_sweep,
    shared_table_cache,
)

SMOKE = load_spec("smoke")


@pytest.fixture(scope="module")
def serial_smoke():
    return run_sweep(SMOKE)


class TestRecords:
    def test_one_record_per_point_in_order(self, serial_smoke):
        assert len(serial_smoke.records) == SMOKE.num_points
        assert [record.point.index for record in serial_smoke.records] == list(
            range(SMOKE.num_points)
        )

    def test_every_record_carries_all_three_strategies(self, serial_smoke):
        for record in serial_smoke.records:
            assert set(record.metrics) == {MODEL_PARALLELISM, DATA_PARALLELISM, HYPAR}
            assert record.speedup(DATA_PARALLELISM) == 1.0
            assert record.metrics[HYPAR].step_seconds > 0
            assert len(record.hypar_levels) == 3  # eight accelerators -> three levels

    def test_hypar_never_loses_to_data_parallelism(self, serial_smoke):
        for record in serial_smoke.records:
            assert record.speedup() >= 1.0 - 1e-9

    def test_rows_are_flat_and_complete(self, serial_smoke):
        rows = serial_smoke.to_rows()
        assert len(rows) == SMOKE.num_points
        for row in rows:
            assert row["strategies"] == "dp,mp"
            assert isinstance(row["hypar_speedup"], float)

    def test_single_accelerator_point_degenerates(self):
        spec = SweepSpec(name="one", models=("Lenet-c",), batch_sizes=(64,), array_sizes=(1,))
        result = run_sweep(spec)
        (record,) = result.records
        assert set(record.metrics) == {"single"}
        assert record.hypar_levels == ()
        assert record.metrics["single"].communication_gb == 0.0


class TestSerialParallelParity:
    """The acceptance bar: both runners produce identical artifacts."""

    def test_parallel_rows_and_artifacts_identical_to_serial(self, tmp_path, serial_smoke):
        with SweepEngine(workers=2) as engine:
            parallel = run_sweep(SMOKE, engine=engine)

        assert parallel.to_rows() == serial_smoke.to_rows()

        serial_paths = serial_smoke.write_artifacts(str(tmp_path / "serial"))
        parallel_paths = parallel.write_artifacts(str(tmp_path / "parallel"))
        for kind in ("json", "csv"):
            serial_bytes = open(serial_paths[kind], "rb").read()
            parallel_bytes = open(parallel_paths[kind], "rb").read()
            assert serial_bytes == parallel_bytes, f"{kind} artifact differs"

    def test_chunking_does_not_change_results(self, serial_smoke):
        with SweepEngine(workers=2, chunk_size=1) as engine:
            assert run_sweep(SMOKE, engine=engine).to_rows() == serial_smoke.to_rows()


class TestSharedTableCache:
    def test_grid_compiles_once_per_configuration(self):
        clear_caches()
        cache = shared_table_cache()
        run_sweep(SMOKE)
        # smoke: 2 models x 2 batches at one (levels, scaling, strategies)
        # configuration = 4 distinct tables; the search plus all three
        # simulations of each point gather from one compilation.
        assert cache.misses == SMOKE.num_points
        first_run_stats = cache.stats()

        # A second pass over the same grid recompiles nothing.
        run_sweep(SMOKE)
        assert cache.misses == first_run_stats["misses"]
        assert cache.hits > first_run_stats["hits"]
        clear_caches()

    def test_repeated_points_hit_the_cache(self):
        clear_caches()
        cache = shared_table_cache()
        point = SMOKE.points()[0]
        evaluate_point(point)
        misses = cache.misses
        evaluate_point(point)
        assert cache.misses == misses
        assert cache.hits >= 1
        clear_caches()
